"""Sharded tables: STR shards, shared-memory columns, a coordinator join.

Scale-out execution (ROADMAP item 5) splits a :class:`SpatialTable`
into disjoint **shards** — each owning its own packed R-tree, its own
:class:`~repro.spatial.columnar.ColumnStore` mirror and its own partial
statistics — plus a **coordinator** that plans against the per-shard
statistics and prunes work before any shard is touched:

* :class:`ShardedTable` STR-tiles the rows (the same
  :func:`~repro.spatial.partition._str_tiles` recursion partitioning
  uses, so shard membership is deterministic and bit-identical across
  columnar backends) and builds one :class:`TableShard` per tile
  through the trusted sub-table path — the shards share the parent's
  ``SpatialObject`` instances, so rows emitted from a shard are *the*
  parent rows, not copies.

* the **MBR semi-join** (:meth:`ShardedTable.join_pairs`): a probe box
  can only match a row whose box it overlaps, and every row box lies
  inside its shard's MBR — so a probe that misses the shard MBR is
  never shipped to that shard.  Shards exchange exactly the candidates
  that can possibly match.

* **shared-memory column publication**: on a process
  :class:`~repro.spatial.partition.Exchange`, each shard's coordinate
  columns are published *once* per sharding into a
  ``multiprocessing.shared_memory`` segment
  (:class:`ShardColumnBlock`); worker tasks carry only the segment name
  and the probe payload instead of re-pickled coordinate blobs per
  task.  Workers attach lazily and cache the decoded boxes per segment,
  so repeated queries pay zero shard-side serialization.  Environments
  without shared memory fall back to inline packed blobs — same
  results, counted in :attr:`ShardedTable.shm_failed`.

Per-shard sweeps reuse the PBSM plane sweep with a single-tile grid:
with one tile the reference-point rule is vacuous, and shard row sets
are disjoint, so each result pair is found exactly once with no global
dedup.  The coordinator merges per-shard pair lists; the engine's bulk
join sorts globally, so sharded answers are bit-identical to serial
ones for every shard count, exchange kind and worker count.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box, enclose_all
from .columnar import pack_floats, unpack_floats
from .partition import (
    Exchange,
    TileGrid,
    TileSpill,
    _str_tiles,
    _sweep_tile,
    mbr_may_match,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.catalog import TableStatistics
    from .table import SpatialObject, SpatialTable

__all__ = [
    "ShardColumnBlock",
    "ShardJoinStats",
    "ShardedTable",
    "TableShard",
]


@dataclass
class ShardJoinStats:
    """Counters for one coordinator join over a sharded table."""

    shards: int = 0  # shards in the sharding
    visited: int = 0  # shards swept (semi-join survivors)
    pruned: int = 0  # shards skipped entirely by the MBR semi-join
    semi_join_tests: int = 0  # probe x shard-MBR overlap tests
    probes_shipped: int = 0  # probe copies sent to shards (post-prune)
    pair_tests: int = 0  # candidate tests inside the shard sweeps
    dedup_skipped: int = 0  # always 0 (single-tile grids; kept for parity)
    pairs: int = 0  # result pairs across all shards
    shm_tasks: int = 0  # tasks that referenced a shared-memory block
    packed_tasks: int = 0  # tasks that shipped inline coordinate blobs
    spilled_entries: int = 0  # probe entries written to spill files
    spill_flushes: int = 0


class ShardColumnBlock:
    """One shard's coordinate columns in a shared-memory segment.

    The payload is the packed-float codec's layout — per row ``lo`` then
    ``hi`` coordinates as little-endian doubles — so boxes rebuilt on
    the worker side are bit-identical to the shard's own.  The creating
    side owns the segment: :meth:`close` unlinks it.
    """

    def __init__(self, shm: Any, count: int, dim: int) -> None:
        self._shm = shm
        self.name = shm.name
        self.count = count
        self.dim = dim
        self.nbytes = count * 2 * dim * 8
        # Segments outlive Python objects unless unlinked; make sure a
        # sharding dropped without close() still releases its memory.
        self._finalizer = weakref.finalize(self, _release_segment, shm)

    @classmethod
    def create(cls, boxes: Sequence[Box], dim: int) -> "ShardColumnBlock":
        from multiprocessing import shared_memory

        coords: List[float] = []
        for b in boxes:
            coords.extend(b.lo)
            coords.extend(b.hi)
        blob = pack_floats(coords)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, len(blob))
        )
        shm.buf[: len(blob)] = blob
        return cls(shm, len(boxes), dim)

    def close(self) -> None:
        """Release and unlink the segment (idempotent)."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        self._finalizer.detach()
        _release_segment(shm)


def _release_segment(shm: Any) -> None:
    """Best-effort close + unlink of a creator-owned segment."""
    try:
        shm.close()
        shm.unlink()
    except Exception:  # pragma: no cover - best-effort teardown
        pass


#: Worker-side cache: segment name -> (shm handle, decoded boxes).
#: Shards are immutable for a sharding's lifetime and segment names are
#: unique per publication, so entries never go stale; they are released
#: when the worker process exits.
_ATTACHED: Dict[str, Tuple[object, Tuple[Box, ...]]] = {}


def _attach_boxes(name: str, count: int, dim: int) -> Tuple[Box, ...]:
    """Attach a published segment and decode its boxes (cached)."""
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    try:
        # Python 3.13+: opt out of resource tracking on attach.
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # 3.10-3.12 register attached segments with the resource
        # tracker, which would unlink them when this worker exits (and,
        # under the fork start method, corrupt the tracker the creator
        # shares).  The creator owns the segment — suppress the
        # attach-side registration instead.
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _no_track(path: str, rtype: str) -> None:  # pragma: no cover - 3.13 skips this
            if rtype != "shared_memory":
                original(path, rtype)

        resource_tracker.register = _no_track
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    coords = unpack_floats(bytes(shm.buf[: count * 2 * dim * 8]))
    step = 2 * dim
    boxes = tuple(
        Box._trusted(
            coords[p : p + dim], coords[p + dim : p + step], empty=False
        )
        for p in range(0, count * step, step)
    )
    _ATTACHED[name] = (shm, boxes)
    return boxes


#: A picklable per-shard sweep task: the single-tile grid extent, a
#: shard-side reference — ``("shm", name, count, tags)`` or
#: ``("blob", coords, tags)`` — and the probe tags + packed probe
#: coordinates.
_ShardTask = Tuple[
    Tuple[float, ...],  # extent lo
    Tuple[float, ...],  # extent hi
    Tuple,  # shard side reference (see above)
    Tuple[int, ...],  # probe tags
    bytes,  # probe coords (lo then hi per box)
]


def _pack_probe_blob(probes: Sequence[Tuple[Box, int]]) -> bytes:
    coords: List[float] = []
    for b, _t in probes:
        coords.extend(b.lo)
        coords.extend(b.hi)
    return pack_floats(coords)


def _unpack_entries(
    tags: Sequence[int], blob: bytes, dim: int
) -> List[Tuple[Box, int]]:
    coords = unpack_floats(blob)
    step = 2 * dim
    out: List[Tuple[Box, int]] = []
    pos = 0
    for tag in tags:
        out.append(
            (
                Box._trusted(
                    coords[pos : pos + dim],
                    coords[pos + dim : pos + step],
                    empty=False,
                ),
                tag,
            )
        )
        pos += step
    return out


def _sweep_shard_task(
    payload: _ShardTask,
) -> Tuple[List[Tuple[int, int]], int, int]:
    """Worker: rebuild one shard sweep task and plane-sweep it.

    The single-tile grid makes the reference-point rule vacuous, so the
    sweep returns every overlapping (probe, row) pair once — identical
    to the serial in-process sweep over the same entries.
    """
    elo, ehi, shard_ref, ptags, pblob = payload
    dim = len(elo)
    grid = TileGrid(
        extent=Box._trusted(tuple(elo), tuple(ehi), empty=False),
        shape=(1,) * dim,
    )
    if shard_ref[0] == "shm":
        _kind, name, count, tags = shard_ref
        boxes = _attach_boxes(name, count, dim)
        rows = list(zip(boxes, tags))
    else:
        _kind, blob, tags = shard_ref
        rows = _unpack_entries(tags, blob, dim)
    probes = _unpack_entries(ptags, pblob, dim)
    return _sweep_tile((grid, 0, probes, rows))


@dataclass(frozen=True)
class TableShard:
    """One shard: a disjoint row subset with its own index and stats.

    ``table`` is a full :class:`~repro.spatial.table.SpatialTable`
    built through the trusted path over the *parent's*
    ``SpatialObject`` instances — its packed R-tree, columnar mirror,
    statistics cache and query methods all work per shard, and rows it
    returns are identical objects to the parent's.  ``tags`` are the
    members' positions in the parent's nonempty-row insertion sequence
    (exactly the row indices the engine's bulk joins use), in shard row
    order.
    """

    sid: int
    mbr: Box
    table: "SpatialTable"
    tags: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.tags)

    def statistics(self, **kwargs: Any) -> "TableStatistics":
        """The shard's own :class:`TableStatistics` (cached on it)."""
        return self.table.statistics(**kwargs)


def _build_subtable(
    parent: "SpatialTable", sid: int, rows: Sequence["SpatialObject"]
) -> "SpatialTable":
    """A shard sub-table sharing the parent's row objects.

    The snapshot loader's trusted-construction idiom: rows are attached
    directly (no region re-validation, no new ``SpatialObject``
    instances) and the shard's R-tree is STR bulk-loaded.  Shards index
    with an R-tree regardless of the parent backend — the shard layer
    *is* the index for scan/grid parents.
    """
    from .table import SpatialTable

    sub = SpatialTable(
        name=f"{parent.name}/s{sid}",
        dim=parent.dim,
        index="rtree",
        universe=parent.universe,
        split_method=parent.split_method,
        node_capacity=parent.node_capacity,
    )
    for obj in rows:
        sub._objects[obj.oid] = obj
        sub._columns.append(obj.box, obj)
    sub.reindex(pack=True)
    return sub


class ShardedTable:
    """A table STR-split into shards plus the coordinator state.

    Built by :meth:`build` (cached on the table by
    :meth:`repro.spatial.table.SpatialTable.sharding`, keyed on the
    mutation counter).  Owns the shards' shared-memory publications;
    :meth:`close` releases them — a superseded sharding must be closed,
    which the table cache does.
    """

    def __init__(
        self,
        table_name: str,
        dim: int,
        version: int,
        target: int,
        shards: Tuple[TableShard, ...],
        seq: Dict[int, int],
    ) -> None:
        self.table_name = table_name
        self.dim = dim
        self.version = version
        self.target = target
        self.shards = shards
        self._seq = seq
        # One sharding serves every concurrent reader of its table, so
        # publish() races: without the lock two readers could both miss
        # the cache and publish the same shard's shared-memory block,
        # leaking whichever one loses the dict store.
        self._lock = threading.Lock()
        self._blocks: Dict[int, Optional[ShardColumnBlock]] = {}  # guarded-by: _lock
        self.closed = False  # guarded-by: _lock
        self.shm_published = 0  # guarded-by: _lock
        self.shm_bytes = 0  # guarded-by: _lock
        self.shm_failed = 0  # guarded-by: _lock

    @classmethod
    def build(
        cls, table: "SpatialTable", n_shards: int
    ) -> "ShardedTable":
        """STR-split ``table`` into ~``n_shards`` disjoint shards."""
        if n_shards < 1:
            raise ValueError(
                f"n_shards must be positive, got {n_shards}"
            )
        rows = [obj for obj in table if not obj.box.is_empty()]
        seq = {id(obj): i for i, obj in enumerate(rows)}
        tiles = _str_tiles(rows, n_shards, table.dim) if rows else []
        shards: List[TableShard] = []
        for tile in tiles:
            if not tile:
                continue
            sid = len(shards)
            shards.append(
                TableShard(
                    sid=sid,
                    mbr=enclose_all(o.box for o in tile),
                    table=_build_subtable(table, sid, tile),
                    tags=tuple(seq[id(o)] for o in tile),
                )
            )
        return cls(
            table_name=table.name,
            dim=table.dim,
            version=table._version,
            target=n_shards,
            shards=tuple(shards),
            seq=seq,
        )

    @classmethod
    def from_row_groups(
        cls,
        table: "SpatialTable",
        target: int,
        groups: Sequence[Sequence["SpatialObject"]],
    ) -> "ShardedTable":
        """Rebuild a sharding from persisted per-shard row groups.

        The snapshot loader's path: ``groups`` holds each shard's
        member rows (the parent table's own instances, shard row order)
        as saved, so no STR re-sort happens and the rebuilt shards are
        identical to the ones that were persisted.
        """
        rows = [obj for obj in table if not obj.box.is_empty()]
        seq = {id(obj): i for i, obj in enumerate(rows)}
        shards: List[TableShard] = []
        for group in groups:
            if not group:
                continue
            sid = len(shards)
            shards.append(
                TableShard(
                    sid=sid,
                    mbr=enclose_all(o.box for o in group),
                    table=_build_subtable(table, sid, group),
                    tags=tuple(seq[id(o)] for o in group),
                )
            )
        return cls(
            table_name=table.name,
            dim=table.dim,
            version=table._version,
            target=target,
            shards=tuple(shards),
            seq=seq,
        )

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def total_rows(self) -> int:
        return sum(len(s) for s in self.shards)

    def describe(self) -> str:
        return f"{self.table_name}[{len(self.shards)} shards]"

    def seq_of(self, obj: "SpatialObject") -> int:
        """A row's position in the parent's nonempty insertion order."""
        return self._seq[id(obj)]

    # -- coordinator pruning -----------------------------------------------------
    def prune(self, query: BoxQuery) -> List[TableShard]:
        """Shards whose MBR could contain a row matching ``query``."""
        if query.is_unsatisfiable():
            return []
        return [s for s in self.shards if mbr_may_match(s.mbr, query)]

    # -- shared-memory publication -------------------------------------------------
    def publish(self, shard: TableShard) -> Optional[ShardColumnBlock]:
        """The shard's coordinate block, created once per sharding.

        ``None`` when shared memory is unavailable in this environment
        (counted in :attr:`shm_failed`); callers then ship inline
        packed blobs — results are identical either way.
        """
        with self._lock:
            if self.closed:
                raise RuntimeError("ShardedTable is closed")
            if shard.sid in self._blocks:
                return self._blocks[shard.sid]
            boxes = [obj.box for obj in shard.table]
            try:
                block = ShardColumnBlock.create(boxes, self.dim)
                self.shm_published += 1
                self.shm_bytes += block.nbytes
            except (ImportError, OSError, PermissionError, ValueError):
                block = None
                self.shm_failed += 1
            self._blocks[shard.sid] = block
            return block

    def close(self) -> None:
        """Unlink every published shared-memory block (idempotent)."""
        with self._lock:
            blocks, self._blocks = list(self._blocks.values()), {}
            self.closed = True
        for block in blocks:
            if block is not None:
                block.close()

    def __enter__(self) -> "ShardedTable":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the coordinator join ------------------------------------------------------
    def join_pairs(
        self,
        probes: Sequence[Tuple[int, Box]],
        exchange: Optional[Exchange] = None,
        stats: Optional[ShardJoinStats] = None,
        spill: Optional[int] = None,
    ) -> List[Tuple[int, int]]:
        """All ``(probe tag, row seq)`` pairs whose boxes overlap.

        The MBR semi-join routes each probe only to shards whose MBR it
        overlaps; each surviving shard is plane-swept independently
        (one task per shard on the ``exchange``).  Shard row sets are
        disjoint, so the merged pair list has no duplicates; callers
        sort it for a deterministic global order.  ``spill=N`` bounds
        the resident replicated-probe memory exactly like
        :func:`~repro.spatial.partition.pbsm_join`'s out-of-core path.
        """
        st = stats if stats is not None else ShardJoinStats()
        st.shards += len(self.shards)
        exchange = exchange or Exchange()
        if not probes or not self.shards:
            st.pruned += len(self.shards)
            return []
        if spill is not None and spill > 0:
            pairs = self._join_spilled(probes, exchange, st, spill)
        else:
            buckets: List[List[Tuple[Box, int]]] = []
            for shard in self.shards:
                cand = []
                for i, box in probes:
                    st.semi_join_tests += 1
                    if box.overlaps(shard.mbr):
                        cand.append((box, i))
                buckets.append(cand)
            pairs = self._sweep_buckets(
                [
                    (shard, cand)
                    for shard, cand in zip(self.shards, buckets)
                    if cand
                ],
                exchange,
                st,
            )
            st.pruned += sum(1 for cand in buckets if not cand)
        st.pairs += len(pairs)
        return pairs

    def _join_spilled(
        self,
        probes: Sequence[Tuple[int, Box]],
        exchange: Exchange,
        st: ShardJoinStats,
        spill: int,
    ) -> List[Tuple[int, int]]:
        """The out-of-core semi-join: probe buckets spill to disk."""
        pairs: List[Tuple[int, int]] = []
        hit: List[bool] = [False] * len(self.shards)
        with TileSpill(dim=self.dim) as store:
            for i, box in probes:
                for shard in self.shards:
                    st.semi_join_tests += 1
                    if box.overlaps(shard.mbr):
                        hit[shard.sid] = True
                        store.add(shard.sid, 0, box, i)
                        if store.buffered >= spill:
                            store.flush()
            st.pruned += sum(1 for h in hit if not h)
            chunk = max(1, exchange.workers or 1)
            live = [s for s in self.shards if hit[s.sid]]
            for start in range(0, len(live), chunk):
                tasks = [
                    (shard, store.load(shard.sid, 0))
                    for shard in live[start : start + chunk]
                ]
                pairs.extend(self._sweep_buckets(tasks, exchange, st))
            st.spilled_entries += store.spilled_entries
            st.spill_flushes += store.flushes
        return pairs

    def _sweep_buckets(
        self,
        buckets: Sequence[Tuple[TableShard, List[Tuple[Box, int]]]],
        exchange: Exchange,
        st: ShardJoinStats,
    ) -> List[Tuple[int, int]]:
        """Sweep ``(shard, candidate probes)`` buckets on the exchange.

        Candidate probes are ``(box, tag)`` sweep entries, in probe
        order — the order :class:`TileSpill` buckets round-trip, so the
        spilled and in-memory paths sweep identical inputs.
        """
        if not buckets:
            return []
        st.visited += len(buckets)
        st.probes_shipped += sum(len(cand) for _s, cand in buckets)
        if exchange.uses_processes(len(buckets)):
            payloads = []
            for shard, cand in buckets:
                extent = enclose_all(
                    [shard.mbr, *(b for b, _t in cand)]
                )
                block = self.publish(shard)
                if block is not None:
                    ref: Tuple = (
                        "shm",
                        block.name,
                        block.count,
                        shard.tags,
                    )
                    st.shm_tasks += 1
                else:
                    coords: List[float] = []
                    for obj in shard.table:
                        coords.extend(obj.box.lo)
                        coords.extend(obj.box.hi)
                    ref = ("blob", pack_floats(coords), shard.tags)
                    st.packed_tasks += 1
                payloads.append(
                    (
                        extent.lo,
                        extent.hi,
                        ref,
                        tuple(t for _b, t in cand),
                        _pack_probe_blob(cand),
                    )
                )
            results = exchange.run(_sweep_shard_task, payloads)
        else:
            tasks = []
            for shard, cand in buckets:
                extent = enclose_all(
                    [shard.mbr, *(b for b, _t in cand)]
                )
                grid = TileGrid(extent=extent, shape=(1,) * self.dim)
                rows = [
                    (obj.box, tag)
                    for obj, tag in zip(shard.table, shard.tags)
                ]
                tasks.append((grid, 0, cand, rows))
            results = exchange.run(_sweep_tile, tasks)
        pairs: List[Tuple[int, int]] = []
        for tile_pairs, tests, dups in results:
            pairs.extend(tile_pairs)
            st.pair_tests += tests
            st.dedup_skipped += dups
        return pairs
