"""Columnar struct-of-arrays storage and the vectorized spatial kernels.

Every hot inner loop of the engine — box intersection tests, the PBSM
plane sweep, z-order key computation, kNN distance metrics — evaluates a
fixed set of per-dimension float comparisons uniformly over many
candidate boxes.  That shape batches well: this module keeps a
:class:`ColumnStore` mirror of a table's bounding boxes as one
contiguous lo/hi coordinate array per dimension and evaluates compiled
:class:`~repro.boxes.bconstraints.BoxQuery` predicates (and the kNN
distance metrics) against whole index ranges at once.

Backends
--------
Three backends, selected by :func:`active_backend`:

``"numpy"``
    NumPy ufuncs over zero-copy views of the coordinate arrays — the
    fast path, used whenever :mod:`numpy` imports (install the
    ``repro-helm-pods[accel]`` extra).
``"array"``
    The stdlib :mod:`array` fallback: the same columnar layout walked by
    scalar Python loops.  Bit-identical results — the expressions are
    the exact per-dimension comparisons and accumulations
    :class:`~repro.boxes.box.Box` uses, in the same order — just
    without the constant-factor win.
``"off"``
    Disable the vectorized paths entirely; every caller falls back to
    the per-object oracle code.

The default is ``"numpy"`` when available, else ``"array"``.  The
``REPRO_COLUMNAR`` environment variable overrides it (``numpy`` quietly
degrades to ``array`` when NumPy is missing, so one setting works
everywhere); tests pin a backend with :func:`forced_backend`.

Bit identity
------------
The kernels are property-tested to match the per-object oracle exactly,
not approximately:

* predicate kernels use the same strict/weak comparisons as
  :meth:`Box.le <repro.boxes.box.Box.le>` / :meth:`Box.overlaps
  <repro.boxes.box.Box.overlaps>` — float comparisons have no rounding,
  so the backends trivially agree;
* distance kernels accumulate squared per-dimension contributions in
  dimension order (float addition is order-sensitive) and take one
  square root at the end.  Every path squares with a plain multiply and
  roots with ``sqrt`` (``math.sqrt`` scalar-side, ``numpy.sqrt``
  array-side) — both are single correctly-rounded IEEE operations, so
  the backends and the oracle produce identical doubles, including the
  distance ties the kNN tie-break rule depends on.  ``x ** 2`` and
  ``x ** 0.5`` are **not** used: libm ``pow`` is off by one ulp from
  the fused forms on common platforms, which is exactly the kind of
  scalar/vectorized divergence the differential gates exist to catch.
"""

from __future__ import annotations

import math
import os
import struct
from array import array
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box

try:  # pragma: no cover - exercised via both CI jobs
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the no-numpy CI job
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

__all__ = [
    "BACKENDS",
    "HAVE_NUMPY",
    "ColumnStore",
    "active_backend",
    "argsort_by_center",
    "enabled",
    "forced_backend",
    "match_mask",
    "mindist_box_arrays",
    "mindist_point_arrays",
    "minmaxdist_point_arrays",
    "node_may_match_mask",
    "pack_floats",
    "resolve",
    "unpack_floats",
]

#: Recognised backend names (see module docstring).
BACKENDS = ("numpy", "array", "off")

#: Test override installed by :func:`forced_backend`; ``None`` defers to
#: the environment / availability default.
_FORCED: Optional[str] = None


def active_backend() -> str:
    """The backend the kernels will use right now.

    Precedence: :func:`forced_backend` override, then the
    ``REPRO_COLUMNAR`` environment variable, then ``"numpy"`` when
    available and ``"array"`` otherwise.  A ``numpy`` request without
    NumPy installed degrades to ``"array"``.
    """
    name = _FORCED
    if name is None:
        env = os.environ.get("REPRO_COLUMNAR", "").strip().lower()
        name = env if env in BACKENDS else None
    if name is None:
        name = "numpy" if HAVE_NUMPY else "array"
    if name == "numpy" and not HAVE_NUMPY:
        return "array"
    return name


def enabled() -> bool:
    """Whether any vectorized path may run (backend not ``"off"``)."""
    return active_backend() != "off"


def resolve(vectorize: Optional[bool]) -> bool:
    """Fold a per-plan ``vectorize`` option into the global switch.

    ``None`` means "use the vectorized path when a backend is enabled";
    an explicit ``False`` always wins, and an explicit ``True`` still
    respects ``REPRO_COLUMNAR=off`` (the global kill switch).
    """
    if vectorize is None:
        return enabled()
    return bool(vectorize) and enabled()


@contextmanager
def forced_backend(name: Optional[str]) -> Iterator[None]:
    """Pin the backend for the duration of a ``with`` block (tests).

    ``name`` must be one of :data:`BACKENDS` or ``None`` (restore the
    default resolution).  Forcing ``"numpy"`` without NumPy installed
    raises — a test that asks for the fast path should fail loudly, not
    silently measure the fallback.
    """
    # The module-level switch is the point of this helper: it pins the
    # backend process-wide so every kernel dispatch in the block agrees.
    global _FORCED  # noqa: PLW0603
    if name is not None and name not in BACKENDS:
        raise ValueError(
            f"unknown columnar backend {name!r}; expected one of {BACKENDS}"
        )
    if name == "numpy" and not HAVE_NUMPY:
        raise ValueError("cannot force the numpy backend: numpy is not installed")
    previous = _FORCED
    _FORCED = name
    try:
        yield
    finally:
        _FORCED = previous


# -- packed coordinate blobs ---------------------------------------------------
# Snapshots store box coordinates as packed little-endian doubles; the
# process-pool Exchange ships tile payloads the same way (one bytes blob
# instead of a pickled object graph per box).  Floats round-trip
# bit-exactly through struct, so rebuilt boxes are identical.

def pack_floats(values: Sequence[float]) -> bytes:
    """Pack floats as little-endian doubles (bit-exact round-trip)."""
    return struct.pack(f"<{len(values)}d", *values)


def unpack_floats(blob: bytes) -> Tuple[float, ...]:
    """Inverse of :func:`pack_floats`."""
    return struct.unpack(f"<{len(blob) // 8}d", blob)


# -- STR sort keys -------------------------------------------------------------
# The Sort-Tile-Recursive build (R-tree bulk load, table partitioning,
# shard splitting) repeatedly sorts boxes by per-dimension centers.  The
# center key is the same IEEE double whether computed per-object or in
# bulk, and a *stable* argsort of identical keys is the same permutation
# as a stable sort — so the vectorized build packs bit-identical trees.

def argsort_by_center(
    los: Sequence[float], his: Sequence[float]
) -> List[int]:
    """Stable permutation sorting slots by center ``(lo + hi) / 2``.

    Equivalent to ``sorted(range(n), key=lambda i: (los[i] + his[i]) / 2)``
    — Timsort is stable and so is the numpy path (``kind="stable"``), so
    both backends return the identical permutation.  Non-finite centers
    (``(-inf + inf) / 2`` is NaN, which numpy orders differently from
    Python's comparison-based sort) fall back to the Python path.
    """
    keys = [(lo + hi) / 2 for lo, hi in zip(los, his)]
    if active_backend() == "numpy" and keys:
        arr = np.asarray(keys, dtype=np.float64)
        if not np.isnan(arr).any():
            return np.argsort(arr, kind="stable").tolist()
    return sorted(range(len(keys)), key=keys.__getitem__)


# -- array-level predicate kernels (numpy backend only) ------------------------
# Shared by the ColumnStore and the R-tree's node-entry mirror: given
# per-dimension lo/hi coordinate arrays and a nonempty mask, evaluate a
# BoxQuery over every slot at once.

def match_mask(lo: Any, hi: Any, nonempty: Any, query: BoxQuery) -> Any:
    """Boolean mask of slots whose *nonempty* box matches ``query``.

    Exactly ``not box.is_empty() and query.matches(box)`` per slot: the
    per-dimension comparisons are Box.le / Box.overlaps for nonempty
    operands (the overlap test simplifies to two strict comparisons
    because both boxes are nonempty under the mask).
    """
    mask = nonempty.copy()
    dim = len(lo)
    inside = query.inside
    if inside is not None:
        if inside.is_empty():
            mask[:] = False
        else:
            for d in range(dim):
                mask &= lo[d] >= inside.lo[d]
                mask &= hi[d] <= inside.hi[d]
    covers = query.covers
    if covers is not None and not covers.is_empty():
        for d in range(dim):
            mask &= lo[d] <= covers.lo[d]
            mask &= hi[d] >= covers.hi[d]
    for c in query.overlap:
        if c.is_empty():
            mask[:] = False
            break
        for d in range(dim):
            mask &= lo[d] < c.hi[d]
            mask &= hi[d] > c.lo[d]
    return mask


def node_may_match_mask(lo: Any, hi: Any, nonempty: Any, query: BoxQuery) -> Any:
    """Boolean mask of inner-node MBR slots that may hold a match.

    The vectorized :meth:`RTree._node_may_match
    <repro.spatial.rtree.RTree._node_may_match>`: each constraint kind
    contributes a factor that is False for empty MBRs, but a query with
    no constraint boxes at all descends everything — including empty
    MBRs — exactly like the scalar test.
    """
    dim = len(lo)
    mask = np.ones(len(nonempty), dtype=bool)
    inside = query.inside
    if inside is not None:
        if inside.is_empty():
            mask[:] = False
        else:
            mask &= nonempty
            for d in range(dim):
                mask &= lo[d] < inside.hi[d]
                mask &= hi[d] > inside.lo[d]
    covers = query.covers
    if covers is not None and not covers.is_empty():
        mask &= nonempty
        for d in range(dim):
            mask &= lo[d] <= covers.lo[d]
            mask &= hi[d] >= covers.hi[d]
    for c in query.overlap:
        if c.is_empty():
            mask[:] = False
            break
        mask &= nonempty
        for d in range(dim):
            mask &= lo[d] < c.hi[d]
            mask &= hi[d] > c.lo[d]
    return mask


# -- array-level distance kernels (numpy backend only) -------------------------
# Shared by the ColumnStore and the R-tree's best-first traversal.  All
# three return one distance per slot (``inf`` at empty slots),
# accumulating squared per-dimension contributions in dimension order
# and rooting once — the exact float recipe of the Box methods, so
# ranking (ties included) matches the per-object oracle.

def mindist_point_arrays(
    lo: Any, hi: Any, nonempty: Any, point: Sequence[float]
) -> Any:
    """Per-slot :meth:`Box.mindist_point
    <repro.boxes.box.Box.mindist_point>` distances to ``point``."""
    acc = np.zeros(len(nonempty), dtype=np.float64)
    for d in range(len(lo)):
        p = float(point[d])
        below = lo[d] - p
        above = p - hi[d]
        acc += np.where(
            p < lo[d],
            below * below,
            np.where(p > hi[d], above * above, 0.0),
        )
    dist = np.sqrt(acc)
    dist[~nonempty] = np.inf
    return dist


def mindist_box_arrays(lo: Any, hi: Any, nonempty: Any, anchor: Box) -> Any:
    """Per-slot :meth:`Box.mindist <repro.boxes.box.Box.mindist>`
    distances to ``anchor`` (all ``inf`` for an empty anchor)."""
    n = len(nonempty)
    if anchor.is_empty():
        return np.full(n, np.inf)
    acc = np.zeros(n, dtype=np.float64)
    for d in range(len(lo)):
        c, e = float(anchor.lo[d]), float(anchor.hi[d])
        below = c - hi[d]
        above = lo[d] - e
        acc += np.where(
            c > hi[d],
            below * below,
            np.where(lo[d] > e, above * above, 0.0),
        )
    dist = np.sqrt(acc)
    dist[~nonempty] = np.inf
    return dist


def minmaxdist_point_arrays(
    lo: Any, hi: Any, nonempty: Any, point: Sequence[float]
) -> Any:
    """Per-slot :meth:`Box.minmaxdist_point
    <repro.boxes.box.Box.minmaxdist_point>` distances to ``point``."""
    dim = len(lo)
    n = len(nonempty)
    total_far = np.zeros(n, dtype=np.float64)
    near_sq = []
    far_sq = []
    for d in range(dim):
        p = float(point[d])
        mid = (lo[d] + hi[d]) / 2
        near = np.where(p <= mid, lo[d], hi[d])
        far = np.where(p >= mid, lo[d], hi[d])
        n_sq = (p - near) ** 2
        f_sq = (p - far) ** 2
        near_sq.append(n_sq)
        far_sq.append(f_sq)
        total_far += f_sq
    best = total_far - far_sq[0] + near_sq[0]
    for d in range(1, dim):
        np.minimum(best, total_far - far_sq[d] + near_sq[d], out=best)
    dist = np.sqrt(best)
    dist[~nonempty] = np.inf
    return dist


class ColumnStore:
    """Struct-of-arrays mirror of a table's bounding boxes.

    One contiguous ``array('d')`` of lo and of hi edge coordinates per
    dimension, plus a nonempty flag per row and the aligned row payloads
    — the in-memory twin of the snapshot format's packed coordinate
    blobs.  Rows are append-only and index-aligned with the owning
    table's insertion order, so "store position" and "scan position" are
    the same number everywhere.

    Empty boxes occupy a placeholder slot (zeros, flag 0): they match no
    box query and are at infinite distance, exactly like the per-object
    code treats them.
    """

    __slots__ = ("dim", "rows", "_lo", "_hi", "_nonempty")

    def __init__(self, dim: int) -> None:
        self.dim = dim
        #: Aligned row payloads (the table's ``SpatialObject``\ s).
        self.rows: List[object] = []
        self._lo = tuple(array("d") for _ in range(dim))
        self._hi = tuple(array("d") for _ in range(dim))
        self._nonempty = array("B")

    def __len__(self) -> int:
        return len(self._nonempty)

    # -- building ----------------------------------------------------------------
    def append(self, box: Box, row: object) -> None:
        """Append one row's bounding box (empty boxes take a placeholder)."""
        if box.is_empty():
            for d in range(self.dim):
                self._lo[d].append(0.0)
                self._hi[d].append(0.0)
            self._nonempty.append(0)
        else:
            for d in range(self.dim):
                self._lo[d].append(box.lo[d])
                self._hi[d].append(box.hi[d])
            self._nonempty.append(1)
        self.rows.append(row)

    def append_coords(
        self, lo: Sequence[float], hi: Sequence[float], row: object
    ) -> None:
        """Append a nonempty box straight from coordinate sequences.

        The snapshot loader's path: columns fill directly from the
        packed payload, no intermediate ``Box`` required.
        """
        for d in range(self.dim):
            self._lo[d].append(lo[d])
            self._hi[d].append(hi[d])
        self._nonempty.append(1)
        self.rows.append(row)

    # -- numpy views -------------------------------------------------------------
    def _views(self) -> Tuple[Any, Any, Any]:
        """Zero-copy float64 views of the coordinate columns.

        Rebuilt per call: ``array`` reallocation on append would leave a
        cached view pointing at freed memory, and ``frombuffer`` is
        cheap relative to any kernel that follows.
        """
        lo = tuple(np.frombuffer(c, dtype=np.float64) for c in self._lo)
        hi = tuple(np.frombuffer(c, dtype=np.float64) for c in self._hi)
        flags = np.frombuffer(self._nonempty, dtype=np.uint8)
        return lo, hi, flags

    # -- the batched box-predicate kernel -----------------------------------------
    def match_positions(
        self,
        query: BoxQuery,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Positions of rows whose nonempty box satisfies ``query``.

        With ``candidates`` (store indices), only those rows are tested
        and the returned values are positions *into the candidates
        sequence*, in candidate order; without it, every row is tested
        and store indices come back ascending.  Either way the admitted
        set is exactly ``{i : not box_i.is_empty() and
        query.matches(box_i)}`` — the scan predicate of
        :meth:`SpatialTable.range_query
        <repro.spatial.table.SpatialTable.range_query>`.
        """
        if active_backend() == "numpy":
            return self._match_positions_numpy(query, candidates)
        return self._match_positions_scalar(query, candidates)

    def _match_positions_numpy(
        self, query: BoxQuery, candidates: Optional[Sequence[int]]
    ) -> List[int]:
        lo, hi, flags = self._views()
        if candidates is not None:
            idx = np.asarray(candidates, dtype=np.intp)
            lo = tuple(c[idx] for c in lo)
            hi = tuple(c[idx] for c in hi)
            flags = flags[idx]
        mask = match_mask(lo, hi, flags != 0, query)
        return np.nonzero(mask)[0].tolist()

    def _match_positions_scalar(
        self, query: BoxQuery, candidates: Optional[Sequence[int]]
    ) -> List[int]:
        lo, hi, flags = self._lo, self._hi, self._nonempty
        inside = query.inside
        covers = query.covers
        if covers is not None and covers.is_empty():
            covers = None
        dead = (inside is not None and inside.is_empty()) or any(
            c.is_empty() for c in query.overlap
        )
        if dead:
            return []
        out: List[int] = []
        indices = range(len(flags)) if candidates is None else candidates
        for pos, i in enumerate(indices):
            if not flags[i]:
                continue
            ok = True
            if inside is not None:
                for d in range(self.dim):
                    if lo[d][i] < inside.lo[d] or hi[d][i] > inside.hi[d]:
                        ok = False
                        break
            if ok and covers is not None:
                for d in range(self.dim):
                    if lo[d][i] > covers.lo[d] or hi[d][i] < covers.hi[d]:
                        ok = False
                        break
            if ok:
                for c in query.overlap:
                    for d in range(self.dim):
                        if not (lo[d][i] < c.hi[d] and hi[d][i] > c.lo[d]):
                            ok = False
                            break
                    if not ok:
                        break
            if ok:
                out.append(pos if candidates is not None else i)
        return out

    def match_rows(self, query: BoxQuery) -> List[object]:
        """The matching rows themselves, in store (= insertion) order."""
        return [self.rows[i] for i in self.match_positions(query)]

    def argsort_by_center(
        self, d: int, candidates: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Stable center-sort of store slots along dimension ``d``.

        Returns ``candidates`` (or all slots) permuted by
        :func:`argsort_by_center`; empty rows sort by their placeholder
        zeros, exactly like the per-object code sees when it never asks
        (callers only pass nonempty slots).
        """
        lo, hi = self._lo[d], self._hi[d]
        if candidates is None:
            perm = argsort_by_center(lo, hi)
            return perm
        los = [lo[i] for i in candidates]
        his = [hi[i] for i in candidates]
        return [candidates[p] for p in argsort_by_center(los, his)]

    # -- batched kNN distance kernels ----------------------------------------------
    # All three return one distance per row (``inf`` at empty rows),
    # accumulating squared per-dimension contributions in dimension
    # order and rooting once — the exact float recipe of the Box
    # methods, so ranking (ties included) matches the oracle.

    def mindist_point(self, point: Sequence[float]) -> Sequence[float]:
        """Per-row :meth:`Box.mindist_point
        <repro.boxes.box.Box.mindist_point>` distances to ``point``."""
        if active_backend() == "numpy":
            lo, hi, flags = self._views()
            return mindist_point_arrays(lo, hi, flags != 0, point)
        inf = float("inf")
        lo, hi, flags = self._lo, self._hi, self._nonempty
        out = []
        for i in range(len(flags)):
            if not flags[i]:
                out.append(inf)
                continue
            acc = 0.0
            for d in range(self.dim):
                p, a, b = point[d], lo[d][i], hi[d][i]
                if p < a:
                    gap = a - p
                    acc += gap * gap
                elif p > b:
                    gap = p - b
                    acc += gap * gap
            out.append(math.sqrt(acc))
        return out

    def mindist_box(self, anchor: Box) -> Sequence[float]:
        """Per-row :meth:`Box.mindist <repro.boxes.box.Box.mindist>`
        distances to ``anchor`` (all ``inf`` for an empty anchor)."""
        inf = float("inf")
        if active_backend() == "numpy":
            lo, hi, flags = self._views()
            return mindist_box_arrays(lo, hi, flags != 0, anchor)
        if anchor.is_empty():
            return [inf] * len(self)
        lo, hi, flags = self._lo, self._hi, self._nonempty
        out = []
        for i in range(len(flags)):
            if not flags[i]:
                out.append(inf)
                continue
            acc = 0.0
            for d in range(self.dim):
                a, b = lo[d][i], hi[d][i]
                c, e = anchor.lo[d], anchor.hi[d]
                if c > b:
                    gap = c - b
                    acc += gap * gap
                elif a > e:
                    gap = a - e
                    acc += gap * gap
            out.append(math.sqrt(acc))
        return out

    def distances_to(self, anchor: Any) -> Sequence[float]:
        """Dispatch on the anchor kind (a :class:`Box` or a point)."""
        if isinstance(anchor, Box):
            return self.mindist_box(anchor)
        return self.mindist_point(anchor)

    def minmaxdist_point(self, point: Sequence[float]) -> Sequence[float]:
        """Per-row :meth:`Box.minmaxdist_point
        <repro.boxes.box.Box.minmaxdist_point>` distances to ``point``."""
        if active_backend() == "numpy":
            lo, hi, flags = self._views()
            return minmaxdist_point_arrays(lo, hi, flags != 0, point)
        inf = float("inf")
        lo, hi, flags = self._lo, self._hi, self._nonempty
        out = []
        for i in range(len(flags)):
            if not flags[i]:
                out.append(inf)
                continue
            near_sq = []
            far_sq = []
            for d in range(self.dim):
                p, a, b = point[d], lo[d][i], hi[d][i]
                mid = (a + b) / 2
                near = a if p <= mid else b
                far = a if p >= mid else b
                near_sq.append((p - near) * (p - near))
                far_sq.append((p - far) * (p - far))
            total_far = sum(far_sq)
            best = min(
                total_far - f + n for n, f in zip(near_sq, far_sq)
            )
            out.append(math.sqrt(best))
        return out
