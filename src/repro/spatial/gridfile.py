"""A grid file for k-dimensional points (paper reference [9]).

Nievergelt/Hinterberger/Sevcik's "adaptable, symmetric multikey file
structure": a directory of grid cells defined by per-dimension *scales*
(split coordinates), each directory cell pointing to a data bucket.  When
a bucket overflows, a scale is extended (splitting a stripe of cells) or
cells start sharing buckets.

This implementation keeps the classic behaviour needed for the paper's
use case — orthogonal range queries over the 2k-dimensional *point*
representation of bounding boxes (Figure 3) — while staying compact:

* splits cycle through dimensions, cutting at the median of the
  overflowing bucket's points (one bucket per directory cell; the
  original's bucket sharing is traded for the simpler full refinement,
  which only affects directory size, not query results);
* :meth:`range_search` visits only directory cells intersecting the query
  rectangle; probe counts are recorded in ``stats``.
"""

from __future__ import annotations

import bisect
from dataclasses import asdict, dataclass, fields
from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import DimensionMismatchError

Point = Tuple[float, ...]


@dataclass
class GridStats:
    """Probe counters for benchmarks.

    ``skipped_splits`` counts overflows where no scale coordinate could
    separate the bucket's points (e.g. all-duplicate points): the bucket
    is left oversized — queries stay correct, but the counter makes the
    degenerate growth visible instead of silent.
    """

    bucket_reads: int = 0
    cell_visits: int = 0
    splits: int = 0
    skipped_splits: int = 0

    def reset(self) -> None:
        self.bucket_reads = self.cell_visits = 0
        self.splits = self.skipped_splits = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-serializable counter snapshot (see :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "GridStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})


class _Bucket:
    __slots__ = ("items",)

    def __init__(self):
        self.items: List[Tuple[Point, object]] = []


class GridFile:
    """A grid file over ``dim``-dimensional points.

    Parameters
    ----------
    dim:
        Point dimensionality (``2k`` for boxes of ``X^k``).
    bucket_capacity:
        Maximum entries per bucket before a split is attempted.
    """

    def __init__(self, dim: int, bucket_capacity: int = 16):
        if dim < 1:
            raise ValueError("dim must be positive")
        if bucket_capacity < 2:
            raise ValueError("bucket_capacity must be at least 2")
        self.dim = dim
        self.bucket_capacity = bucket_capacity
        # scales[d] is the sorted list of split coordinates in dimension d;
        # cell index i_d addresses the interval between consecutive splits.
        self._scales: List[List[float]] = [[] for _ in range(dim)]
        self._directory: Dict[Tuple[int, ...], _Bucket] = {
            tuple([0] * dim): _Bucket()
        }
        self._size = 0
        self._next_split_dim = 0
        self.stats = GridStats()

    def __len__(self) -> int:
        return self._size

    # -- addressing -----------------------------------------------------------
    def _cell_of(self, point: Point) -> Tuple[int, ...]:
        return tuple(
            bisect.bisect_right(self._scales[d], point[d])
            for d in range(self.dim)
        )

    def _cells(self) -> Iterator[Tuple[int, ...]]:
        ranges = [range(len(s) + 1) for s in self._scales]
        return product(*ranges)

    # -- updates ----------------------------------------------------------------
    def insert(self, point: Sequence[float], value) -> None:
        """Insert a point with an associated value."""
        p = tuple(float(c) for c in point)
        if len(p) != self.dim:
            raise DimensionMismatchError(
                f"point has {len(p)} dims, grid file has {self.dim}"
            )
        cell = self._cell_of(p)
        bucket = self._directory[cell]
        bucket.items.append((p, value))
        self._size += 1
        if len(bucket.items) > self.bucket_capacity:
            self._split_bucket(cell, bucket)

    def _split_bucket(self, cell: Tuple[int, ...], bucket: _Bucket) -> None:
        """Split an overflowing bucket by extending one scale.

        Tries each dimension (starting from the rotation pointer) until a
        split coordinate actually separates the bucket's points; gives up
        (allowing oversized buckets of duplicate points, recorded in
        ``stats.skipped_splits``) otherwise.
        """
        for attempt in range(self.dim):
            d = (self._next_split_dim + attempt) % self.dim
            coords = sorted(p[d] for p, _v in bucket.items)
            median = coords[len(coords) // 2]
            if median == coords[0]:
                # Degenerate in this dimension; try a cut above the low run.
                higher = [c for c in coords if c > median]
                if not higher:
                    continue
                median = higher[0]
            if median in self._scales[d]:
                continue
            self._next_split_dim = (d + 1) % self.dim
            self._extend_scale(d, median)
            self.stats.splits += 1
            return
        self.stats.skipped_splits += 1

    def _extend_scale(self, d: int, coordinate: float) -> None:
        """Insert a split coordinate, refining the directory.

        Every cell stripe at the split position is duplicated; buckets
        are shared by the two halves, except the overflowing ones which
        are redistributed.
        """
        pos = bisect.bisect_right(self._scales[d], coordinate)
        self._scales[d].insert(pos, coordinate)
        old_dir = self._directory
        new_dir: Dict[Tuple[int, ...], _Bucket] = {}
        for cell, bucket in old_dir.items():
            if cell[d] < pos:
                new_dir[cell] = bucket
            elif cell[d] > pos:
                shifted = cell[:d] + (cell[d] + 1,) + cell[d + 1 :]
                new_dir[shifted] = bucket
            else:
                # The split stripe: redistribute this bucket's points.
                low_cell = cell
                high_cell = cell[:d] + (cell[d] + 1,) + cell[d + 1 :]
                low = _Bucket()
                high = _Bucket()
                # Points with p[d] < coordinate go low; >= goes high,
                # mirroring _cell_of's bisect_right addressing.
                low.items = [(p, v) for p, v in bucket.items if p[d] < coordinate]
                high.items = [(p, v) for p, v in bucket.items if p[d] >= coordinate]
                new_dir[low_cell] = low
                new_dir[high_cell] = high
        self._directory = new_dir

    def delete(self, point: Sequence[float], value) -> bool:
        """Remove one matching entry; True if found."""
        p = tuple(float(c) for c in point)
        bucket = self._directory[self._cell_of(p)]
        for k, (q, v) in enumerate(bucket.items):
            if q == p and v == value:
                del bucket.items[k]
                self._size -= 1
                return True
        return False

    # -- queries ------------------------------------------------------------------
    def exact_search(self, point: Sequence[float]) -> Iterator[object]:
        """Values stored at exactly this point."""
        p = tuple(float(c) for c in point)
        bucket = self._directory[self._cell_of(p)]
        self.stats.bucket_reads += 1
        for q, v in bucket.items:
            if q == p:
                yield v

    def range_search(
        self,
        lo: Sequence[float],
        hi: Sequence[float],
    ) -> Iterator[Tuple[Point, object]]:
        """All entries with ``lo[d] <= p[d] <= hi[d]`` in every dimension.

        The closed orthogonal range query of Figure 3.  Only directory
        cells intersecting the rectangle are visited; shared buckets are
        read once.
        """
        lo_t = tuple(float(c) for c in lo)
        hi_t = tuple(float(c) for c in hi)
        if len(lo_t) != self.dim or len(hi_t) != self.dim:
            raise DimensionMismatchError("query rectangle dimension mismatch")
        index_ranges = []
        for d in range(self.dim):
            first = bisect.bisect_right(self._scales[d], lo_t[d])
            # Cells are right-open at scale coordinates: the cell index of
            # a point equals bisect_right(scales, coord).
            last = bisect.bisect_right(self._scales[d], hi_t[d])
            index_ranges.append(range(first, last + 1))
        seen: set = set()
        for cell in product(*index_ranges):
            self.stats.cell_visits += 1
            bucket = self._directory.get(cell)
            if bucket is None or id(bucket) in seen:
                continue
            seen.add(id(bucket))
            self.stats.bucket_reads += 1
            for p, v in bucket.items:
                if all(lo_t[d] <= p[d] <= hi_t[d] for d in range(self.dim)):
                    yield p, v

    def all_entries(self) -> Iterator[Tuple[Point, object]]:
        """Every stored entry."""
        seen: set = set()
        for bucket in self._directory.values():
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            yield from bucket.items

    # -- inspection ---------------------------------------------------------------
    def directory_shape(self) -> Tuple[int, ...]:
        """Number of cells per dimension."""
        return tuple(len(s) + 1 for s in self._scales)

    def check_invariants(self) -> None:
        """Every point lies in the bucket its cell addresses."""
        for cell, bucket in self._directory.items():
            for p, _v in bucket.items:
                assert self._cell_of(p) == cell, (cell, p)
