"""LSM-style in-memory write delta for a :class:`~repro.spatial.table.SpatialTable`.

The packed base structures (STR r-tree, grid file, column store) are
expensive to build and cheap to query; point mutations are the opposite.
A :class:`TableDelta` stages inserts and deletes without touching the
base: inserted rows live in a small insertion-ordered memo, deletes of
base rows become *tombstones* keyed by oid, and a delete of a row that
was itself staged simply unstages it.  Every table read path merges the
delta transparently — filter tombstoned base rows, append matching
staged rows — so readers observe the live table while the base stays
immutable until a *repack* folds the delta in and rebuilds the packed
structures.

MVCC-lite: a ``(base_version, watermark)`` pair identifies a logical
snapshot.  The watermark bumps once per staged mutation; the base
version only bumps at repack.  Cached artifacts keyed by the base
version alone (probe-cache entries over base rows, base statistics)
therefore survive delta-only writes, while artifacts that must see the
live rows (partitionings, shardings, merged statistics) key on the pair.

Cost model: with only a handful of staged rows a probe brute-forces the
memo; past :data:`INDEX_THRESHOLD` staged inserts an insertion-built
r-tree over the staged boxes prunes the (comparatively expensive)
geometry tests, and a cheap insertion-order sweep restores deterministic
output order.  The index is maintained incrementally on insert and
dropped on unstage; it rebuilds lazily at the next probe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Tuple

from ..boxes.bconstraints import BoxQuery
from .rtree import RTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .table import SpatialObject

#: Staged-insert count past which probes go through an insertion r-tree
#: instead of brute-forcing the memo.
INDEX_THRESHOLD = 16


class TableDelta:
    """Staged mutations against one immutable table base.

    Not thread-safe on its own; the owning table (or the service layer
    above it) serialises writers, and readers only ever see a delta via
    a table object they hold a reference to.
    """

    __slots__ = (
        "base_version",
        "watermark",
        "inserts",
        "tombstones",
        "ops",
        "node_capacity",
        "split_method",
        "_index",
        "_indexed",
    )

    def __init__(
        self,
        base_version: int,
        node_capacity: int = 8,
        split_method: str = "quadratic",
    ) -> None:
        self.base_version = base_version
        #: Bumps once per staged mutation (insert, delete, unstage).
        self.watermark = 0
        #: Staged rows in insertion order, keyed by oid.
        self.inserts: "OrderedDict[object, SpatialObject]" = OrderedDict()
        #: Oids of *base* rows deleted since the last repack.
        self.tombstones: Set[object] = set()
        #: Replayable mutation log (``("insert", obj)`` / ``("delete", oid)``)
        #: in staging order; the service repack worker replays the suffix
        #: staged after its build snapshot onto the freshly packed table.
        self.ops: List[Tuple[str, object]] = []
        self.node_capacity = node_capacity
        self.split_method = split_method
        self._index: Optional[RTree] = None
        self._indexed = 0

    # -- staging -----------------------------------------------------------

    @property
    def pending_ops(self) -> int:
        """Staged mutations still awaiting a repack."""
        return len(self.inserts) + len(self.tombstones)

    def stage_insert(self, obj: "SpatialObject") -> None:
        """Stage a new row (caller has checked the oid is free)."""
        self.inserts[obj.oid] = obj
        self.ops.append(("insert", obj))
        self.watermark += 1
        if self._index is not None:
            if not obj.box.is_empty():
                self._index.insert(obj.box, obj)
            self._indexed += 1

    def stage_delete(self, oid: object, base_has: bool) -> bool:
        """Stage a delete; returns False when ``oid`` is not live.

        A staged insert is unstaged outright; a base row (``base_has``
        and not already tombstoned) gains a tombstone.
        """
        if oid in self.inserts:
            del self.inserts[oid]
            # The index cannot cheaply evict one entry; rebuild lazily.
            self._index = None
            self._indexed = 0
        elif base_has and oid not in self.tombstones:
            self.tombstones.add(oid)
        else:
            return False
        self.ops.append(("delete", oid))
        self.watermark += 1
        return True

    def clone(self) -> "TableDelta":
        """An independent copy sharing the (immutable) staged rows."""
        twin = TableDelta(
            self.base_version,
            node_capacity=self.node_capacity,
            split_method=self.split_method,
        )
        twin.watermark = self.watermark
        twin.inserts = OrderedDict(self.inserts)
        twin.tombstones = set(self.tombstones)
        twin.ops = list(self.ops)
        return twin

    # -- probing -----------------------------------------------------------

    @property
    def indexed(self) -> bool:
        """Whether the next probe will go through the insertion r-tree."""
        return len(self.inserts) >= INDEX_THRESHOLD

    def _probe_index(self) -> RTree:
        if self._index is None or self._indexed != len(self.inserts):
            index = RTree(
                max_entries=self.node_capacity, split_method=self.split_method
            )
            for obj in self.inserts.values():
                if not obj.box.is_empty():
                    index.insert(obj.box, obj)
            self._index = index
            self._indexed = len(self.inserts)
        return self._index

    def matches(self, query: BoxQuery) -> List["SpatialObject"]:
        """Staged rows matching ``query``, in insertion order."""
        if not self.inserts or query.is_unsatisfiable():
            return []
        if self.indexed:
            hit = {id(obj) for _box, obj in self._probe_index().search(query)}
            # Cheap identity sweep restores insertion order after the
            # index pruned the expensive geometry tests.
            return [obj for obj in self.inserts.values() if id(obj) in hit]
        return [
            obj
            for obj in self.inserts.values()
            if not obj.box.is_empty() and query.matches(obj.box)
        ]

    def count(self, query: BoxQuery) -> int:
        """Number of staged rows matching ``query``."""
        if not self.inserts or query.is_unsatisfiable():
            return 0
        if self.indexed:
            return self._probe_index().count(query)
        return sum(
            1
            for obj in self.inserts.values()
            if not obj.box.is_empty() and query.matches(obj.box)
        )

    def staged_rows(self) -> Iterator["SpatialObject"]:
        """The staged rows in insertion order."""
        return iter(self.inserts.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TableDelta(base_version={self.base_version}, "
            f"watermark={self.watermark}, inserts={len(self.inserts)}, "
            f"tombstones={len(self.tombstones)})"
        )
