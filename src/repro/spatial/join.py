"""Spatial join algorithms over R-trees.

Two classic algorithms for the binary overlap join the paper's related
work discusses, complementing the z-order merge of
:mod:`repro.spatial.zorder`:

* :func:`index_nested_loop_join` — probe one index per outer row (what
  the compiled box plan effectively does for a 2-variable overlap
  query);
* :func:`synchronized_rtree_join` — Brinkhoff-style simultaneous
  depth-first traversal of two R-trees, pruning pairs of subtrees whose
  MBRs do not intersect.  Asymptotically superior when both sides are
  indexed.

Both return exact results when given the objects' true boxes; callers
holding regions follow up with an exact region-overlap filter.
"""

from __future__ import annotations

from typing import Iterator, List, MutableMapping, Optional, Tuple

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box
from .rtree import RTree, _Node


def index_nested_loop_join(
    outer: List[Tuple[Box, object]],
    inner: RTree,
    cache: Optional[
        MutableMapping[BoxQuery, List[Tuple[Box, object]]]
    ] = None,
) -> Iterator[Tuple[object, object]]:
    """Overlap join: one index probe per outer entry.

    ``cache`` (any mutable mapping, e.g. a plain dict shared across
    calls) memoises probe results by box query, so duplicate outer boxes
    cost a single traversal of ``inner``.
    """
    for box, value in outer:
        if box.is_empty():
            continue
        query = BoxQuery(overlap=(box,))
        if cache is not None and query in cache:
            matches = cache[query]
        else:
            matches = list(inner.search(query))
            if cache is not None:
                cache[query] = matches
        for _b, other in matches:
            yield value, other


def synchronized_rtree_join(
    left: RTree, right: RTree
) -> Iterator[Tuple[object, object]]:
    """Overlap join by synchronized traversal of two R-trees.

    Recursively pairs nodes whose MBRs intersect; a leaf/inner mismatch
    descends the inner side only.  Every reported pair's boxes overlap.
    """

    def node_mbr(node: _Node) -> Box:
        return node.mbr()

    def recurse(a: _Node, b: _Node) -> Iterator[Tuple[object, object]]:
        left.stats.node_reads += 1
        right.stats.node_reads += 1
        if a.leaf and b.leaf:
            for abox, avalue in a.entries:
                if abox.is_empty():
                    continue
                for bbox, bvalue in b.entries:
                    if abox.overlaps(bbox):
                        yield avalue, bvalue
        elif a.leaf:
            for bbox, bchild in b.entries:
                if node_mbr(a).overlaps(bbox):
                    yield from recurse(a, bchild)
        elif b.leaf:
            for abox, achild in a.entries:
                if abox.overlaps(node_mbr(b)):
                    yield from recurse(achild, b)
        else:
            for abox, achild in a.entries:
                for bbox, bchild in b.entries:
                    if abox.overlaps(bbox):
                        yield from recurse(achild, bchild)

    root_a = left._root
    root_b = right._root
    if not root_a.entries or not root_b.entries:
        return
    yield from recurse(root_a, root_b)
