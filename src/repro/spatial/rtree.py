"""Guttman R-tree over bounding boxes (paper reference [6]).

A from-scratch implementation of the dynamic R-tree with quadratic split,
supporting the combined predicate search the paper's Section 4 needs:
given a :class:`repro.boxes.bconstraints.BoxQuery` (a conjunction of
``⊑ a``, ``b ⊑`` and ``⊓ c ≠ ∅`` constraints), find all stored entries
whose box satisfies it — descending only into subtrees whose MBR could
contain a match:

* an entry with ``e ⊑ a`` can only live under a node with ``N ⊓ a ≠ ∅``
  (indeed ``e ⊑ N`` and ``e ⊑ a`` force a common point);
* an entry with ``b ⊑ e`` only under a node with ``b ⊑ N``;
* an entry with ``e ⊓ c ≠ ∅`` only under a node with ``N ⊓ c ≠ ∅``.

Node accesses are counted (``stats``) so the benchmarks can report probe
costs.  Deletion uses the classic condense-and-reinsert strategy.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box, EMPTY_BOX, enclose_all
from . import columnar

#: Anchor of a distance traversal: a point (coordinate sequence) or a
#: box (box-to-box MINDIST — what the distance join uses).
DistanceAnchor = Union[Sequence[float], Box]


@dataclass
class RTreeStats:
    """Mutable counters for index instrumentation.

    ``entry_tests`` counts per-entry box tests during search (leaf
    entries matched against the query plus inner entries tested for
    descent) — the R-tree's share of "exact box tests", comparable to a
    spatial join's candidate-pair tests.  Distance traversals
    (:meth:`RTree.nearest` / :meth:`RTree.distance_browse`) count their
    per-entry distance computations there too.  ``pruned_subtrees``
    records subtrees a nearest-neighbor bound or a COUNT shortcut
    discarded without reading — the savings the kNN/aggregation
    benchmarks gate on.
    """

    node_reads: int = 0
    entry_tests: int = 0
    splits: int = 0
    inserts: int = 0
    deletes: int = 0
    reinserts: int = 0
    pruned_subtrees: int = 0

    def reset(self) -> None:
        self.node_reads = self.entry_tests = 0
        self.splits = self.inserts = self.deletes = self.reinserts = 0
        self.pruned_subtrees = 0

    def to_dict(self) -> Dict[str, int]:
        """JSON-serializable counter snapshot (see :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "RTreeStats":
        """Inverse of :meth:`to_dict`; ignores unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: int(v) for k, v in data.items() if k in known})


class _Node:
    """An R-tree node; leaves hold ``(box, value)``, inner nodes hold
    ``(box, child)``."""

    __slots__ = ("leaf", "entries", "parent")

    def __init__(self, leaf: bool):
        self.leaf = leaf
        self.entries: List[Tuple[Box, object]] = []
        self.parent: Optional["_Node"] = None

    def mbr(self) -> Box:
        return enclose_all(box for box, _ in self.entries)


class RTree:
    """A dynamic R-tree (Guttman 1984, quadratic split).

    Parameters
    ----------
    max_entries:
        Node capacity ``M`` (default 8).
    min_entries:
        Minimum fill ``m`` (default ``M // 2``), used by split and
        condense.
    split_method:
        ``"quadratic"`` (Guttman's default), ``"linear"`` (his cheaper
        variant: seeds are the pair with greatest normalized separation,
        remaining entries are assigned by least enlargement without the
        quadratic preference scan) or ``"rstar"`` (R*-tree style: on the
        first leaf overflow of an insertion the farthest-from-center 30%
        of entries are *force-reinserted* instead of splitting, and
        actual splits use the R* topological split — minimum margin axis,
        minimum overlap distribution).  The ablation bench E11 compares
        the variants.
    """

    SPLIT_METHODS = ("quadratic", "linear", "rstar")

    #: Fraction of a leaf's entries ejected by an R* forced reinsert.
    REINSERT_FRACTION = 0.3

    def __init__(
        self,
        max_entries: int = 8,
        min_entries: Optional[int] = None,
        split_method: str = "quadratic",
    ):
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        if split_method not in self.SPLIT_METHODS:
            raise ValueError(
                f"unknown split method {split_method!r}; expected one of "
                f"{self.SPLIT_METHODS}"
            )
        self.max_entries = max_entries
        self.min_entries = (
            max_entries // 2 if min_entries is None else min_entries
        )
        if not 1 <= self.min_entries <= max_entries // 2:
            raise ValueError("min_entries must be in [1, max_entries/2]")
        self.split_method = split_method
        self._root = _Node(leaf=True)
        self._size = 0
        self._reinserting = False
        self.stats = RTreeStats()
        # Structural mutation counter; invalidates the cached subtree
        # entry counts the COUNT pushdown uses.
        self._mutations = 0
        self._subtree_counts: Optional[Dict[int, int]] = None
        self._subtree_counts_version = -1
        # Flat preorder mirror of the node-entry MBRs for the numpy
        # kernels; rebuilt lazily after any structural mutation.
        self._entry_mirror = None
        self._entry_mirror_version = -1

    # -- bulk loading (STR) ---------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        entries: Sequence[Tuple[Box, object]],
        max_entries: int = 8,
        split_method: str = "quadratic",
    ) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive loading.

        STR (Leutenegger et al.) sorts entries by the first coordinate
        of their centers, slices into vertical tiles, sorts each tile by
        the second coordinate, and packs leaves at full fanout; upper
        levels are packed recursively.  Produces near-100% node
        utilisation and markedly better query performance than one-by-
        one insertion (ablation bench E11).
        """
        tree = cls(max_entries=max_entries, split_method=split_method)
        items = [(b, v) for b, v in entries if not b.is_empty()]
        skipped = [(b, v) for b, v in entries if b.is_empty()]
        if not items:
            for b, v in skipped:
                tree.insert(b, v)
            return tree
        import math

        dim = items[0][0].dim

        def sort_by_center(level_items, d):
            # Bulk center keys through the columnar kernel: stable
            # argsort of identical doubles == the old per-object
            # ``sorted``, so packed trees stay bit-identical.
            perm = columnar.argsort_by_center(
                [e[0].lo[d] for e in level_items],
                [e[0].hi[d] for e in level_items],
            )
            return [level_items[i] for i in perm]

        def pack_level(level_items: List[Tuple[Box, object]], leaf: bool) -> List[_Node]:
            n = len(level_items)
            cap = max_entries
            n_nodes = math.ceil(n / cap)
            # STR tiling over the first two dimensions (1-D data falls
            # back to a simple sorted packing).
            level_items = sort_by_center(level_items, 0)
            nodes: List[_Node] = []
            if dim >= 2:
                slices = math.ceil(math.sqrt(n_nodes))
                per_slice = math.ceil(n / slices)
                chunks = [
                    sort_by_center(level_items[i : i + per_slice], 1)
                    for i in range(0, n, per_slice)
                ]
            else:
                chunks = [level_items]
            for chunk in chunks:
                for i in range(0, len(chunk), cap):
                    node = _Node(leaf=leaf)
                    node.entries = list(chunk[i : i + cap])
                    nodes.append(node)
            return nodes

        nodes = pack_level(items, leaf=True)
        while len(nodes) > 1:
            parents = pack_level(
                [(n.mbr(), n) for n in nodes], leaf=False
            )
            for p in parents:
                for _b, child in p.entries:
                    child.parent = p
            nodes = parents
        tree._root = nodes[0]
        tree._size = len(items)
        for b, v in skipped:  # preserve empty-box entries semantics
            tree.insert(b, v)
        return tree

    def __len__(self) -> int:
        return self._size

    # -- insertion ------------------------------------------------------------
    def insert(self, box: Box, value) -> None:
        """Insert an entry (empty boxes are legal but match no query)."""
        self.stats.inserts += 1
        self._insert_entry(box, value)

    def _insert_entry(self, box: Box, value) -> None:
        self._mutations += 1
        leaf = self._choose_leaf(self._root, box)
        leaf.entries.append((box, value))
        self._size += 1
        self._refresh_upwards(leaf)  # AdjustTree: enlarge ancestor MBRs
        node = leaf
        while node is not None and len(node.entries) > self.max_entries:
            if (
                self.split_method == "rstar"
                and node.leaf
                and node.parent is not None
                and not self._reinserting
                and not node.mbr().is_empty()
            ):
                # R* OverflowTreatment: reinsert before resorting to a
                # split (once per insertion, leaf level only).
                self._forced_reinsert(node)
                return
            node = self._split(node)

    def _forced_reinsert(self, node: _Node) -> None:
        """Eject the ~30% entries farthest from the node's center and
        re-insert them from the root (R* forced reinsert).

        The ejected entries usually land in better-fitting siblings,
        deferring the split and tightening MBRs — the R*-tree's main
        robustness trick for dynamic workloads.
        """
        self.stats.reinserts += 1
        center = node.mbr().center()

        def dist2(entry: Tuple[Box, object]) -> float:
            box = entry[0]
            if box.is_empty():
                return -1.0  # keep empty boxes in place
            c = box.center()
            return sum((a - b) ** 2 for a, b in zip(c, center))

        entries = sorted(node.entries, key=dist2)
        eject_n = max(1, round(len(entries) * self.REINSERT_FRACTION))
        keep, eject = entries[:-eject_n], entries[-eject_n:]
        node.entries = keep
        self._refresh_upwards(node)
        self._size -= len(eject)
        self._reinserting = True
        try:
            for box, value in eject:
                self._insert_entry(box, value)
        finally:
            self._reinserting = False

    def _choose_leaf(self, node: _Node, box: Box) -> _Node:
        while not node.leaf:
            self.stats.node_reads += 1
            best = None
            best_key = None
            for child_box, child in node.entries:
                enlarged = child_box.enclose(box)
                key = (
                    enlarged.volume() - child_box.volume(),
                    child_box.volume(),
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            node = best  # type: ignore[assignment]
        return node

    def _pick_seeds_quadratic(self, entries) -> Tuple[int, int]:
        """Guttman PickSeeds: the pair wasting the most area together."""
        worst = None
        seed_pair = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                waste = (
                    entries[i][0].enclose(entries[j][0]).volume()
                    - entries[i][0].volume()
                    - entries[j][0].volume()
                )
                if worst is None or waste > worst:
                    worst = waste
                    seed_pair = (i, j)
        return seed_pair

    def _pick_seeds_linear(self, entries) -> Tuple[int, int]:
        """Guttman LinearPickSeeds: greatest normalized separation."""
        boxes = [b for b, _v in entries]
        dim = next((b.dim for b in boxes if not b.is_empty()), 0)
        best_pair = (0, 1)
        best_sep = -1.0
        for d in range(dim):
            items = [
                (k, b) for k, b in enumerate(boxes) if not b.is_empty()
            ]
            if len(items) < 2:
                continue
            highest_low = max(items, key=lambda kb: kb[1].lo[d])
            lowest_high = min(items, key=lambda kb: kb[1].hi[d])
            if highest_low[0] == lowest_high[0]:
                continue
            width = max(b.hi[d] for _k, b in items) - min(
                b.lo[d] for _k, b in items
            )
            if width <= 0:
                continue
            sep = (highest_low[1].lo[d] - lowest_high[1].hi[d]) / width
            if sep > best_sep:
                best_sep = sep
                best_pair = tuple(sorted((highest_low[0], lowest_high[0])))
        return best_pair

    def _pick_split_rstar(
        self, entries: List[Tuple[Box, object]]
    ) -> Tuple[List[Tuple[Box, object]], List[Tuple[Box, object]]]:
        """R* topological split: choose the split axis by minimum total
        margin over all candidate distributions, then the distribution
        on that axis with minimum overlap (area breaks ties)."""
        m = self.min_entries
        total = len(entries)
        dim = next(
            (b.dim for b, _v in entries if not b.is_empty()), 0
        )
        if dim == 0 or total < 2 * m:
            mid = total // 2
            return entries[:mid], entries[mid:]
        neg_inf = float("-inf")

        def margin(box: Box) -> float:
            return sum(box.sides())

        best_margin = None
        best_candidates: List[Tuple[float, float, int, list]] = []
        for d in range(dim):
            for by_upper in (False, True):
                def sort_key(entry, d=d, by_upper=by_upper):
                    box = entry[0]
                    if box.is_empty():
                        return (neg_inf, neg_inf)
                    if by_upper:
                        return (box.hi[d], box.lo[d])
                    return (box.lo[d], box.hi[d])

                ordered = sorted(entries, key=sort_key)
                prefix: List[Box] = []
                acc = EMPTY_BOX
                for box, _v in ordered:
                    acc = acc.enclose(box)
                    prefix.append(acc)
                suffix: List[Box] = [EMPTY_BOX] * total
                acc = EMPTY_BOX
                for k in range(total - 1, -1, -1):
                    acc = acc.enclose(ordered[k][0])
                    suffix[k] = acc
                margin_sum = 0.0
                candidates: List[Tuple[float, float, int, list]] = []
                for k in range(m, total - m + 1):
                    left, right = prefix[k - 1], suffix[k]
                    margin_sum += margin(left) + margin(right)
                    candidates.append(
                        (
                            left.meet(right).volume(),
                            left.volume() + right.volume(),
                            k,
                            ordered,
                        )
                    )
                if best_margin is None or margin_sum < best_margin:
                    best_margin = margin_sum
                    best_candidates = candidates
        _overlap, _area, k, ordered = min(
            best_candidates, key=lambda c: (c[0], c[1])
        )
        return ordered[:k], ordered[k:]

    def _split(self, node: _Node) -> Optional[_Node]:
        """Node split (quadratic, linear or R* topological); returns the
        parent."""
        self.stats.splits += 1
        entries = node.entries
        if self.split_method == "rstar":
            group1, group2 = self._pick_split_rstar(entries)
            return self._relink_split(node, group1, group2)
        if self.split_method == "linear":
            i, j = self._pick_seeds_linear(entries)
        else:
            i, j = self._pick_seeds_quadratic(entries)
        group1 = [entries[i]]
        group2 = [entries[j]]
        rest = [e for k, e in enumerate(entries) if k not in (i, j)]
        mbr1, mbr2 = entries[i][0], entries[j][0]
        while rest:
            # Force assignment when one group must absorb the remainder.
            if len(group1) + len(rest) == self.min_entries:
                group1.extend(rest)
                rest = []
                break
            if len(group2) + len(rest) == self.min_entries:
                group2.extend(rest)
                rest = []
                break
            if self.split_method == "linear":
                # Linear: take entries in arbitrary (list) order.
                b, v = rest.pop(0)
            else:
                # Quadratic PickNext: maximal preference difference.
                best_idx = 0
                best_diff = -1.0
                for k, (bx, _v) in enumerate(rest):
                    d1 = mbr1.enclose(bx).volume() - mbr1.volume()
                    d2 = mbr2.enclose(bx).volume() - mbr2.volume()
                    diff = abs(d1 - d2)
                    if diff > best_diff:
                        best_diff = diff
                        best_idx = k
                b, v = rest.pop(best_idx)
            d1 = mbr1.enclose(b).volume() - mbr1.volume()
            d2 = mbr2.enclose(b).volume() - mbr2.volume()
            if (d1, mbr1.volume(), len(group1)) <= (
                d2,
                mbr2.volume(),
                len(group2),
            ):
                group1.append((b, v))
                mbr1 = mbr1.enclose(b)
            else:
                group2.append((b, v))
                mbr2 = mbr2.enclose(b)
        return self._relink_split(node, group1, group2)

    def _relink_split(
        self,
        node: _Node,
        group1: List[Tuple[Box, object]],
        group2: List[Tuple[Box, object]],
    ) -> Optional[_Node]:
        """Install the two split groups into the tree; returns the parent."""
        sibling = _Node(leaf=node.leaf)
        sibling.entries = group2
        if not node.leaf:
            for _b, child in group2:
                child.parent = sibling  # type: ignore[union-attr]
        node.entries = group1

        parent = node.parent
        if parent is None:
            new_root = _Node(leaf=False)
            new_root.entries = [
                (node.mbr(), node),
                (sibling.mbr(), sibling),
            ]
            node.parent = new_root
            sibling.parent = new_root
            self._root = new_root
            return None
        # Replace node's entry and add the sibling.
        parent.entries = [
            (node.mbr() if child is node else b, child)
            for b, child in parent.entries
        ]
        parent.entries.append((sibling.mbr(), sibling))
        sibling.parent = parent
        self._refresh_upwards(parent)
        return parent

    def _refresh_upwards(self, node: Optional[_Node]) -> None:
        while node is not None and node.parent is not None:
            parent = node.parent
            parent.entries = [
                (child.mbr() if child is node else b, child)
                for b, child in parent.entries
            ]
            node = parent

    # -- search ------------------------------------------------------------------
    def search(self, query: BoxQuery) -> Iterator[Tuple[Box, object]]:
        """All entries whose box satisfies ``query`` (single traversal).

        This is the paper's single range query: the conjunction of all
        three constraint forms is evaluated in one descent.
        """
        if query.is_unsatisfiable():
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_reads += 1
            if node.leaf:
                for box, value in node.entries:
                    self.stats.entry_tests += 1
                    if not box.is_empty() and query.matches(box):
                        yield box, value
            else:
                for mbr, child in node.entries:
                    self.stats.entry_tests += 1
                    if self._node_may_match(mbr, query):
                        stack.append(child)

    def search_batch(
        self, queries: Sequence[BoxQuery]
    ) -> List[List[Tuple[Box, object]]]:
        """Evaluate several box queries; duplicates share one traversal.

        Batching entry point for bulk callers (the per-probe engine path
        is :meth:`search` via ``SpatialTable.range_query_cached``):
        results are aligned with ``queries``, and repeated identical
        queries (common when a step's box template ignores part of the
        retrieved prefix) cost a single descent.
        """
        memo: Dict[BoxQuery, List[Tuple[Box, object]]] = {}
        out: List[List[Tuple[Box, object]]] = []
        for query in queries:
            rows = memo.get(query)
            if rows is None:
                rows = list(self.search(query))
                memo[query] = rows
            out.append(rows)
        return out

    # -- columnar mirror (vectorized search) -----------------------------------
    def _entry_columns(self):
        """Node-entry MBRs mirrored into flat preorder arrays, cached.

        Returns ``(lo, hi, nonempty, slices)`` where ``lo``/``hi`` are
        per-dimension float64 arrays over every entry of every node (in
        node preorder, entry order within a node), ``nonempty`` a bool
        array, and ``slices`` maps ``id(node)`` to its ``(offset,
        count)`` range — so a traversal tests a whole node's entries
        with one kernel call.  ``None`` when NumPy is unavailable.
        Rebuilt lazily after any structural mutation (like the subtree
        counts, the maintenance walk is amortised, not billed to
        ``stats``).
        """
        if not columnar.HAVE_NUMPY:
            return None
        if (
            self._entry_mirror is None
            or self._entry_mirror_version != self._mutations
        ):
            np = columnar.np
            slices: Dict[int, Tuple[int, int]] = {}
            boxes: List[Box] = []
            dim = 0
            stack = [self._root]
            while stack:
                node = stack.pop()
                slices[id(node)] = (len(boxes), len(node.entries))
                for box, _child in node.entries:
                    boxes.append(box)
                    if dim == 0 and not box.is_empty():
                        dim = box.dim
                if not node.leaf:
                    stack.extend(child for _b, child in node.entries)
            n = len(boxes)
            lo = tuple(np.zeros(n, dtype=np.float64) for _ in range(dim))
            hi = tuple(np.zeros(n, dtype=np.float64) for _ in range(dim))
            nonempty = np.zeros(n, dtype=bool)
            for i, box in enumerate(boxes):
                if box.is_empty():
                    continue
                nonempty[i] = True
                for d in range(dim):
                    lo[d][i] = box.lo[d]
                    hi[d][i] = box.hi[d]
            self._entry_mirror = (lo, hi, nonempty, slices)
            self._entry_mirror_version = self._mutations
        return self._entry_mirror

    def search_columnar(self, query: BoxQuery) -> Iterator[Tuple[Box, object]]:
        """:meth:`search` with batched node-entry tests (numpy backend).

        The traversal, the visit order, the yielded entries and the
        ``node_reads``/``entry_tests`` counters are identical to the
        scalar :meth:`search` — only the per-entry predicate loop is
        replaced by one :func:`~repro.spatial.columnar.match_mask` /
        :func:`~repro.spatial.columnar.node_may_match_mask` kernel call
        per node.  Falls back to :meth:`search` without NumPy.
        """
        mirror = self._entry_columns()
        if mirror is None:
            yield from self.search(query)
            return
        if query.is_unsatisfiable():
            return
        np = columnar.np
        lo, hi, nonempty, slices = mirror
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.stats.node_reads += 1
            off, cnt = slices[id(node)]
            self.stats.entry_tests += cnt
            if not cnt:
                continue
            sl = slice(off, off + cnt)
            slo = tuple(c[sl] for c in lo)
            shi = tuple(c[sl] for c in hi)
            if node.leaf:
                mask = columnar.match_mask(slo, shi, nonempty[sl], query)
                for local in np.nonzero(mask)[0].tolist():
                    yield node.entries[local]
            else:
                mask = columnar.node_may_match_mask(
                    slo, shi, nonempty[sl], query
                )
                # Children push in entry order, exactly like the scalar
                # loop, so the DFS pops them in the same order.
                for local in np.nonzero(mask)[0].tolist():
                    stack.append(node.entries[local][1])

    # -- distance browsing / nearest neighbors --------------------------------
    @staticmethod
    def _entry_dist(box: Box, anchor: "DistanceAnchor") -> float:
        """Distance from ``anchor`` (a point or a box) to ``box``."""
        if isinstance(anchor, Box):
            return box.mindist(anchor)
        return box.mindist_point(anchor)

    def distance_browse(
        self, anchor: "DistanceAnchor"
    ) -> Iterator[Tuple[float, Box, object]]:
        """Incremental best-first distance browsing (Hjaltason–Samet).

        Yields ``(distance, box, value)`` in nondecreasing distance from
        ``anchor`` — a point (coordinate sequence) or a :class:`Box`
        (box-to-box MINDIST).  A single priority queue holds nodes and
        entries keyed by MINDIST; a node is read only when its MINDIST
        reaches the front, so consuming the first ``k`` results touches
        a small neighborhood of the tree instead of all of it.  Stopping
        early prunes every subtree still queued
        (``stats.pruned_subtrees`` is updated by :meth:`nearest`; the
        raw generator leaves them implicit).  Empty-box entries are at
        infinite distance and are never yielded.
        """
        # Heap items: (dist, tiebreak counter, is_entry, payload).
        counter = 0
        heap: List[Tuple[float, int, bool, object]] = [
            (0.0, 0, False, self._root)
        ]
        while heap:
            dist, _seq, is_entry, payload = heapq.heappop(heap)
            if is_entry:
                box, value = payload  # type: ignore[misc]
                yield dist, box, value
                continue
            node: _Node = payload  # type: ignore[assignment]
            self.stats.node_reads += 1
            for box, child in node.entries:
                self.stats.entry_tests += 1
                d = self._entry_dist(box, anchor)
                if d == float("inf"):
                    continue  # empty boxes match no distance query
                counter += 1
                if node.leaf:
                    heapq.heappush(
                        heap, (d, counter, True, (box, child))
                    )
                else:
                    heapq.heappush(heap, (max(d, dist), counter, False, child))

    def nearest(
        self,
        anchor: "DistanceAnchor",
        k: int = 1,
        tie_key: Optional[Callable[[object], object]] = None,
        vectorize: bool = False,
    ) -> List[Tuple[float, Box, object]]:
        """The ``k`` entries nearest to ``anchor``, best-first.

        ``vectorize=True`` precomputes each visited node's per-entry
        MINDIST (and, when applicable, MINMAXDIST) with the batched
        :mod:`~repro.spatial.columnar` kernels instead of one
        :meth:`Box.mindist <repro.boxes.box.Box.mindist>` call per
        entry; the traversal itself — including the sequential bound
        evolution the pruning depends on — is unchanged, so results and
        counters are bit-identical.  Ignored without NumPy.

        Equivalent to (and property-tested against) sorting all entries
        by ``(distance, tie_key(value))`` and taking the first ``k`` —
        ties at the ``k``-th distance are broken by ``tie_key``
        (default: ``repr`` of the stored value), so the result set is
        deterministic and matches a brute-force reference exactly.

        Pruning: the browse stops as soon as the next queued distance
        strictly exceeds the current ``k``-th best, and every subtree
        still queued at that point is counted in
        ``stats.pruned_subtrees``.  For point anchors with ``k == 1``
        the MINMAXDIST bound additionally discards hopeless subtrees
        before they are ever queued.
        """
        if k <= 0:
            return []
        key = tie_key if tie_key is not None else repr
        # For k == 1 with a point anchor, MINMAXDIST of any visited node
        # is a sound upper bound on the nearest distance (a minimal MBR
        # guarantees an object within it); track it to skip pushes.
        use_minmax = k == 1 and not isinstance(anchor, Box)
        mirror = self._entry_columns() if vectorize else None
        bound = float("inf")
        counter = 0
        heap: List[Tuple[float, int, bool, object]] = [
            (0.0, 0, False, self._root)
        ]
        found: List[Tuple[float, Box, object]] = []
        while heap:
            dist, _seq, is_entry, payload = heap[0]
            if len(found) >= k and dist > found[k - 1][0]:
                break  # nothing queued can affect the result set
            heapq.heappop(heap)
            if is_entry:
                box, value = payload  # type: ignore[misc]
                found.append((dist, box, value))
                found.sort(key=lambda e: (e[0], key(e[2])))
                continue
            node: _Node = payload  # type: ignore[assignment]
            self.stats.node_reads += 1
            d_arr = mm_arr = None
            if mirror is not None and node.entries:
                lo, hi, nonempty, slices = mirror
                off, cnt = slices[id(node)]
                sl = slice(off, off + cnt)
                slo = tuple(c[sl] for c in lo)
                shi = tuple(c[sl] for c in hi)
                snon = nonempty[sl]
                if isinstance(anchor, Box):
                    d_arr = columnar.mindist_box_arrays(
                        slo, shi, snon, anchor
                    )
                else:
                    d_arr = columnar.mindist_point_arrays(
                        slo, shi, snon, anchor
                    )
                if use_minmax and not node.leaf:
                    mm_arr = columnar.minmaxdist_point_arrays(
                        slo, shi, snon, anchor
                    )
            for e, (box, child) in enumerate(node.entries):
                self.stats.entry_tests += 1
                d = (
                    float(d_arr[e])
                    if d_arr is not None
                    else self._entry_dist(box, anchor)
                )
                if d == float("inf"):
                    continue
                if not node.leaf and d > bound:
                    self.stats.pruned_subtrees += 1
                    continue
                if use_minmax and not node.leaf:
                    bound = min(
                        bound,
                        float(mm_arr[e])
                        if mm_arr is not None
                        else box.minmaxdist_point(anchor),
                    )
                counter += 1
                if node.leaf:
                    heapq.heappush(heap, (d, counter, True, (box, child)))
                else:
                    heapq.heappush(
                        heap, (max(d, dist), counter, False, child)
                    )
        self.stats.pruned_subtrees += sum(
            1 for _d, _s, is_entry, _p in heap if not is_entry
        )
        return found[:k]

    # -- counting (aggregation pushdown) --------------------------------------
    def node_count(self) -> int:
        """Total number of nodes — the reads a full traversal costs."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            total += 1
            if not node.leaf:
                stack.extend(child for _b, child in node.entries)
        return total

    def _subtree_count_map(self) -> Dict[int, int]:
        """Per-node counts of non-empty-box entries below, cached.

        Rebuilt lazily after any insert/delete (like the statistics
        caches elsewhere, the maintenance traversal is not billed to
        ``stats.node_reads`` — it is amortised over every subsequent
        :meth:`count`).
        """
        if (
            self._subtree_counts is None
            or self._subtree_counts_version != self._mutations
        ):
            counts: Dict[int, int] = {}

            def walk(node: _Node) -> int:
                if node.leaf:
                    n = sum(
                        1 for box, _v in node.entries if not box.is_empty()
                    )
                else:
                    n = sum(walk(child) for _b, child in node.entries)
                counts[id(node)] = n
                return n

            walk(self._root)
            self._subtree_counts = counts
            self._subtree_counts_version = self._mutations
        return self._subtree_counts

    def count(self, query: BoxQuery) -> int:
        """``len(list(self.search(query)))`` without materialising rows.

        The aggregation pushdown: when the query is a pure containment
        template (only an ``inside`` constraint), a node whose MBR lies
        inside the query box contributes its cached subtree entry count
        without being descended into (``stats.pruned_subtrees``) — every
        entry below is contained in the node's MBR and hence in the
        query box.  Other constraint forms cannot shortcut this way (an
        MBR overlapping ``c`` says nothing about its entries), so they
        descend normally.
        """
        if query.is_unsatisfiable():
            return 0
        inside_only = (
            query.inside is not None
            and not query.overlap
            and (query.covers is None or query.covers.is_empty())
        )
        counts = self._subtree_count_map() if inside_only else None
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if counts is not None and node.mbr().le(query.inside):
                total += counts[id(node)]
                self.stats.pruned_subtrees += 1
                continue
            self.stats.node_reads += 1
            if node.leaf:
                for box, _value in node.entries:
                    self.stats.entry_tests += 1
                    if not box.is_empty() and query.matches(box):
                        total += 1
            else:
                for mbr, child in node.entries:
                    self.stats.entry_tests += 1
                    if self._node_may_match(mbr, query):
                        stack.append(child)
        return total

    @staticmethod
    def _node_may_match(mbr: Box, query: BoxQuery) -> bool:
        if query.inside is not None and not mbr.overlaps(query.inside):
            return False
        if (
            query.covers is not None
            and not query.covers.is_empty()
            and not query.covers.le(mbr)
        ):
            return False
        return all(mbr.overlaps(c) for c in query.overlap)

    # -- deletion -----------------------------------------------------------------
    def delete(self, box: Box, value) -> bool:
        """Remove one entry matching ``(box, value)``; True if found.

        Uses a simplified condense step: an emptied leaf is unlinked from
        its ancestors (no reinsertion is needed since it held nothing).

        Instrumentation mirrors the insert/search paths: the FindLeaf
        descent records ``node_reads``/``entry_tests``, and a successful
        removal bumps ``stats.deletes`` (the counterpart of
        ``stats.inserts``) and invalidates the cached subtree counts.
        """
        leaf = self._find_leaf(self._root, box, value)
        if leaf is None:
            return False
        self.stats.deletes += 1
        self._mutations += 1
        for k, (b, v) in enumerate(leaf.entries):
            if b == box and v == value:
                del leaf.entries[k]
                break
        self._size -= 1
        node = leaf
        while node.parent is not None and not node.entries:
            parent = node.parent
            parent.entries = [
                (b, child) for b, child in parent.entries if child is not node
            ]
            node = parent
        self._refresh_upwards(node)
        # Collapse a root with a single inner child.
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0][1]
            self._root.parent = None
        return True

    def _find_leaf(self, node: _Node, box: Box, value) -> Optional[_Node]:
        self.stats.node_reads += 1
        if node.leaf:
            for b, v in node.entries:
                self.stats.entry_tests += 1
                if b == box and v == value:
                    return node
            return None
        for mbr, child in node.entries:
            self.stats.entry_tests += 1
            if box.le(mbr):
                found = self._find_leaf(child, box, value)
                if found is not None:
                    return found
        return None

    # -- inspection ------------------------------------------------------------------
    def height(self) -> int:
        """Tree height (1 for a single leaf)."""
        h = 1
        node = self._root
        while not node.leaf:
            h += 1
            node = node.entries[0][1]
        return h

    def all_entries(self) -> Iterator[Tuple[Box, object]]:
        """Every stored entry (no filtering)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(child for _b, child in node.entries)

    # -- snapshot serialization -----------------------------------------------
    def to_node_arrays(
        self, value_key: Callable[[object], int]
    ) -> Dict[str, object]:
        """Flatten the tree into parallel node arrays for serialization.

        Nodes are listed in preorder (root first).  Per node, ``leaf``
        holds a 0/1 flag and ``counts`` its entry count; entries
        contribute, in entry order, ``2 * dim`` floats to ``bounds``
        (lo coordinates then hi; empty boxes as all zeros) and one int
        to ``values`` — ``value_key(value)`` for leaf entries, the
        child's node index for inner entries.  Stored MBRs are dumped
        verbatim (they may be looser than the recomputed child MBR after
        deletions), so :meth:`from_node_arrays` reproduces the structure
        bit-identically instead of approximately.
        """
        order: List[_Node] = []
        index: Dict[int, int] = {}
        stack = [self._root]
        while stack:
            node = stack.pop()
            index[id(node)] = len(order)
            order.append(node)
            if not node.leaf:
                stack.extend(
                    child for _b, child in reversed(node.entries)
                )
        dim = 0
        for node in order:
            for box, _value in node.entries:
                if not box.is_empty():
                    dim = box.dim
                    break
            if dim:
                break
        leaf_flags: List[int] = []
        counts: List[int] = []
        bounds: List[float] = []
        values: List[int] = []
        for node in order:
            leaf_flags.append(1 if node.leaf else 0)
            counts.append(len(node.entries))
            for box, value in node.entries:
                if box.is_empty():
                    bounds.extend([0.0] * (2 * dim))
                else:
                    bounds.extend(box.lo)
                    bounds.extend(box.hi)
                if node.leaf:
                    values.append(value_key(value))
                else:
                    values.append(index[id(value)])
        return {
            "dim": dim,
            "max_entries": self.max_entries,
            "min_entries": self.min_entries,
            "split_method": self.split_method,
            "leaf": leaf_flags,
            "counts": counts,
            "bounds": bounds,
            "values": values,
        }

    @classmethod
    def from_node_arrays(
        cls, data: Dict[str, object], values: Sequence[object]
    ) -> "RTree":
        """Rebuild a tree from :meth:`to_node_arrays` output.

        ``values`` resolves leaf-entry indices back to stored objects
        (typically the table's rows in saved order).  No STR sort or
        insertion happens — nodes are reattached exactly as dumped.
        """
        tree = cls(
            max_entries=int(data["max_entries"]),
            min_entries=int(data["min_entries"]),
            split_method=str(data["split_method"]),
        )
        leaf_flags = data["leaf"]
        if not leaf_flags:
            return tree
        dim = int(data["dim"])
        bounds = data["bounds"]
        refs = data["values"]
        nodes = [_Node(leaf=bool(flag)) for flag in leaf_flags]
        pos = vi = size = 0
        for node, count in zip(nodes, data["counts"]):
            for _ in range(int(count)):
                lo = tuple(bounds[pos : pos + dim])
                hi = tuple(bounds[pos + dim : pos + 2 * dim])
                pos += 2 * dim
                box = Box._trusted(lo, hi)
                ref = int(refs[vi])
                vi += 1
                if node.leaf:
                    node.entries.append((box, values[ref]))
                    size += 1
                else:
                    child = nodes[ref]
                    child.parent = node
                    node.entries.append((box, child))
        tree._root = nodes[0]
        tree._size = size
        return tree

    def check_invariants(self) -> None:
        """Validate structural invariants (tests call this after inserts)."""
        def walk(node: _Node, depth: int, leaf_depths: List[int]) -> None:
            if node is not self._root:
                assert 1 <= len(node.entries) <= self.max_entries
            if node.leaf:
                leaf_depths.append(depth)
                return
            for mbr, child in node.entries:
                assert child.parent is node
                actual = child.mbr()
                assert actual.le(mbr), "child MBR exceeds stored MBR"
                walk(child, depth + 1, leaf_depths)

        leaf_depths: List[int] = []
        walk(self._root, 0, leaf_depths)
        assert len(set(leaf_depths)) <= 1, "leaves at different depths"
