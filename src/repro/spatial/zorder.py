"""Z-order (Morton) decomposition and the PROBE-style spatial join.

The paper's Section 1 compares against Orenstein & Manola's PROBE [10],
whose query language offers a binary *spatial join* (overlay) implemented
with z-order curves.  To run that comparison (benchmark E8) we implement
the essential machinery:

* a Morton code for grid cells with ``2^k`` branching per level;
* :func:`decompose` — cover a box by maximal z-order cells (each cell is
  one contiguous z-interval), down to a resolution limit;
* :class:`ZOrderIndex` — objects as sorted z-interval lists;
* :func:`zorder_join` — the sort-merge overlap join: two z-interval
  streams are swept in z-order, interval intersections produce candidate
  pairs, and an exact box test filters them.

Note the trade-off the paper points out: the z-order method natively
supports the binary *overlap* join, while the constraint compilation
supports arbitrary Boolean constraint systems; E8 measures the price on
the one query shape both can do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..boxes.box import Box
from ..errors import DimensionMismatchError
from . import columnar


def interleave(coords: Sequence[int], bits: int) -> int:
    """Morton-interleave ``k`` coordinates of ``bits`` bits each."""
    out = 0
    k = len(coords)
    for b in range(bits):
        for d, c in enumerate(coords):
            out |= ((c >> b) & 1) << (b * k + d)
    return out


def interleave_batch(cells, bits: int):
    """:func:`interleave` over the rows of an ``(n, k)`` int64 array.

    Callers must ensure ``k * bits <= 62`` (the int64 code width); the
    scalar :func:`interleave` has no such limit thanks to Python ints.
    """
    np = columnar.np
    n, k = cells.shape
    out = np.zeros(n, dtype=np.int64)
    one = np.int64(1)
    for b in range(bits):
        for d in range(k):
            out |= ((cells[:, d] >> np.int64(b)) & one) << np.int64(
                b * k + d
            )
    return out


@dataclass(frozen=True)
class ZRange:
    """A contiguous z-code interval ``[lo, hi)`` tagged with its owner."""

    lo: int
    hi: int
    value: object = None

    def intersects(self, other: "ZRange") -> bool:
        return self.lo < other.hi and other.lo < self.hi


class ZGrid:
    """A fixed-resolution z-order grid over a universe box.

    ``levels`` quadtree levels (``2^levels`` cells per dimension); cells
    are addressed by Morton codes of ``k * levels`` bits.
    """

    def __init__(self, universe: Box, levels: int = 6):
        if universe.is_empty():
            raise ValueError("universe box must be non-empty")
        if not 1 <= levels <= 16:
            raise ValueError("levels must be in [1, 16]")
        self.universe = universe
        self.levels = levels
        self.k = universe.dim
        self._cells_per_dim = 1 << levels
        self._steps = tuple(
            (hi - lo) / self._cells_per_dim
            for lo, hi in zip(universe.lo, universe.hi)
        )

    def cell_count(self) -> int:
        """Total number of finest-level cells."""
        return self._cells_per_dim ** self.k

    def decompose(self, box: Box, max_ranges: Optional[int] = None) -> List[ZRange]:
        """Cover ``box ∩ universe`` with maximal z-order cell ranges.

        Recursive quadtree descent: a cell fully inside the box (or at
        the finest level) is emitted as one contiguous z-interval;
        adjacent intervals are coalesced.  ``max_ranges`` optionally caps
        the list by coarsening (emitting partially-covered cells whole),
        trading precision for size as PROBE does.
        """
        if box.is_empty():
            return []
        target = box.meet(self.universe)
        if target.is_empty():
            return []
        out: List[ZRange] = []

        def recurse(cell_lo: Tuple[int, ...], level: int, z_lo: int) -> None:
            size = 1 << (self.levels - level)
            cell_box = Box(
                tuple(
                    self.universe.lo[d] + cell_lo[d] * self._steps[d]
                    for d in range(self.k)
                ),
                tuple(
                    self.universe.lo[d]
                    + (cell_lo[d] + size) * self._steps[d]
                    for d in range(self.k)
                ),
            )
            inter = cell_box.meet(target)
            if inter.is_empty():
                return
            z_width = 1 << (self.k * (self.levels - level))
            if cell_box.le(target) or level == self.levels:
                out.append(ZRange(z_lo, z_lo + z_width))
                return
            if max_ranges is not None and len(out) >= max_ranges:
                out.append(ZRange(z_lo, z_lo + z_width))  # coarsen
                return
            child_width = z_width >> self.k
            half = size >> 1
            for child in range(1 << self.k):
                child_lo = tuple(
                    cell_lo[d] + (half if (child >> d) & 1 else 0)
                    for d in range(self.k)
                )
                recurse(child_lo, level + 1, z_lo + child * child_width)

        recurse(tuple([0] * self.k), 0, 0)
        out.sort(key=lambda r: r.lo)
        merged: List[ZRange] = []
        for r in out:
            if merged and merged[-1].hi == r.lo:
                merged[-1] = ZRange(merged[-1].lo, r.hi)
            else:
                merged.append(r)
        return merged


class ZOrderIndex:
    """Objects stored as z-interval lists, merged into one sorted stream."""

    def __init__(self, grid: ZGrid, max_ranges_per_object: int = 32):
        self.grid = grid
        self.max_ranges = max_ranges_per_object
        self._ranges: List[ZRange] = []
        self._boxes: Dict[object, Box] = {}
        self._sorted = True

    def insert(self, box: Box, value) -> None:
        """Insert an object by its bounding box."""
        if not box.is_empty() and box.dim != self.grid.k:
            raise DimensionMismatchError("box/grid dimension mismatch")
        self._boxes[value] = box
        for r in self.grid.decompose(box, self.max_ranges):
            self._ranges.append(ZRange(r.lo, r.hi, value))
        self._sorted = False

    def insert_batch(self, items: Sequence[Tuple[Box, object]]) -> None:
        """Insert many objects; identical stream to sequential inserts.

        The numpy backend vectorizes the *single-cell* fast path: boxes
        whose universe clip fits inside one finest-level cell decompose
        to exactly one unit z-interval, so their cell indices and Morton
        codes compute in one batch (:func:`interleave_batch`) instead of
        one recursive :meth:`ZGrid.decompose` descent each.  The cell
        bounds are recomputed with the exact float expressions of the
        descent and verified per box — any box that fails (or spans
        cells, or overflows the int64 code width) falls back to the
        scalar path, so the resulting ranges are always bit-identical.
        """
        grid = self.grid
        single_z: Dict[int, int] = {}
        if (
            columnar.active_backend() == "numpy"
            and len(items) > 1
            and grid.k * grid.levels <= 62
        ):
            np = columnar.np
            cand = [
                (n, box)
                for n, (box, _v) in enumerate(items)
                if not box.is_empty() and box.dim == grid.k
            ]
            if cand:
                k = grid.k
                ulo, uhi = grid.universe.lo, grid.universe.hi
                steps = grid._steps
                cells = grid._cells_per_dim
                lo = np.array([b.lo for _n, b in cand], dtype=np.float64)
                hi = np.array([b.hi for _n, b in cand], dtype=np.float64)
                cl_lo = np.maximum(lo, ulo)
                cl_hi = np.minimum(hi, uhi)
                # ok: clip nonempty and contained in cell idx's exact
                # float bounds (the decompose recursion's authority).
                ok = np.all(cl_lo < cl_hi, axis=1)
                idx = np.zeros((len(cand), k), dtype=np.int64)
                for d in range(k):
                    i = ((cl_lo[:, d] - ulo[d]) / steps[d]).astype(
                        np.int64
                    )
                    np.clip(i, 0, cells - 1, out=i)
                    idx[:, d] = i
                    cell_lo = ulo[d] + i * steps[d]
                    cell_hi = ulo[d] + (i + 1) * steps[d]
                    ok &= cell_lo <= cl_lo[:, d]
                    ok &= cl_hi[:, d] <= cell_hi
                codes = interleave_batch(idx, grid.levels)
                for pos, (n, _b) in enumerate(cand):
                    if ok[pos]:
                        single_z[n] = int(codes[pos])
        for n, (box, value) in enumerate(items):
            z = single_z.get(n)
            if z is None:
                self.insert(box, value)
            else:
                self._boxes[value] = box
                self._ranges.append(ZRange(z, z + 1, value))
                self._sorted = False

    def ranges(self) -> List[ZRange]:
        """The sorted z-interval stream."""
        if not self._sorted:
            self._ranges.sort(key=lambda r: (r.lo, r.hi))
            self._sorted = True
        return self._ranges

    def box_of(self, value) -> Box:
        """The stored bounding box of an object."""
        return self._boxes[value]

    def __len__(self) -> int:
        return len(self._boxes)


def zorder_join(
    left: ZOrderIndex, right: ZOrderIndex, exact: bool = True
) -> Iterator[Tuple[object, object]]:
    """Overlap join by merging two sorted z-interval streams.

    Classic sweep: advance through both streams in z order keeping the
    intervals that may still intersect later ones; every left/right
    interval intersection yields a candidate pair, deduplicated and then
    (optionally) verified with the exact box-overlap test.

    Yields pairs ``(left_value, right_value)``.
    """
    lr = left.ranges()
    rr = right.ranges()
    i = j = 0
    active_left: List[ZRange] = []
    active_right: List[ZRange] = []
    emitted: Set[Tuple[int, int]] = set()

    def emit(a: ZRange, b: ZRange) -> Iterator[Tuple[object, object]]:
        key = (id(a.value), id(b.value))
        if key in emitted:
            return
        emitted.add(key)
        if exact:
            if not left.box_of(a.value).overlaps(right.box_of(b.value)):
                return
        yield a.value, b.value

    while i < len(lr) or j < len(rr):
        take_left = j >= len(rr) or (i < len(lr) and lr[i].lo <= rr[j].lo)
        if take_left:
            cur = lr[i]
            i += 1
            active_right = [r for r in active_right if r.hi > cur.lo]
            for r in active_right:
                yield from emit(cur, r)
            active_left.append(cur)
        else:
            cur = rr[j]
            j += 1
            active_left = [r for r in active_left if r.hi > cur.lo]
            for r in active_left:
                yield from emit(r, cur)
            active_right.append(cur)


def zorder_overlap_query(
    index: ZOrderIndex, probe: Box, exact: bool = True
) -> Iterator[object]:
    """All indexed objects overlapping ``probe`` (one-sided join)."""
    probe_ranges = index.grid.decompose(probe)
    if not probe_ranges:
        return
    stream = index.ranges()
    seen: Set[int] = set()
    pi = 0
    for r in stream:
        while pi < len(probe_ranges) and probe_ranges[pi].hi <= r.lo:
            pi += 1
        if pi >= len(probe_ranges):
            break
        if any(r.intersects(p) for p in probe_ranges[pi:]):
            if id(r.value) in seen:
                continue
            seen.add(id(r.value))
            if exact and not index.box_of(r.value).overlaps(probe):
                continue
            yield r.value
