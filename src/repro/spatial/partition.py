"""Spatial partitioning: STR tiles, the PBSM grid, and the Exchange driver.

Three pieces turn the single-partition engine into a partitioned,
parallelisable one:

* :func:`str_partition` — Sort-Tile-Recursive tiling of a table's rows
  into disjoint :class:`Partition`\\ s, each carrying its member rows,
  bounding box (MBR) and counts.  The partition MBRs are what
  :class:`~repro.engine.physical.PartitionScan` prunes against and what
  the statistics catalog records per partition.

* the **PBSM** machinery (after Patel & DeWitt's partition-based
  spatial-merge join): a uniform :class:`TileGrid` over the joint extent
  of both inputs, *replication* of every box into each tile it overlaps,
  a per-tile **plane sweep** (:func:`_sweep_tile`) producing candidate
  overlap pairs, and **reference-point deduplication** — a pair is
  emitted only in the tile containing the lower corner of the two boxes'
  intersection, so boundary duplicates never leave their tile and no
  global "seen" set is needed.  That makes the tile tasks independent
  and order-insensitive: :func:`pbsm_join` returns the same pair list
  whether tiles run serially or on a pool.

* :class:`Exchange` — the driver that fans tile tasks out over a
  ``concurrent.futures`` thread or process pool, with a deterministic
  serial fallback (``workers <= 1``, single task, or pool creation
  failure).  Task order is preserved, so parallel results are
  bit-identical to serial ones.  An Exchange normally borrows a
  persistent :class:`WorkerPool` (owned by the ``Database`` /
  ``QueryService`` lifetime) so repeated queries never pay process
  spawn again; without one it falls back to a one-shot pool per call.

* :class:`TileSpill` — disk-backed tile buckets (the out-of-core PBSM
  path): replicated tile entries are flushed to per-tile spill files in
  the snapshot format's packed-float codec once an in-memory budget is
  exceeded, and :func:`pbsm_join` then streams tile tasks back in
  bounded chunks instead of materialising every bucket at once.
"""

from __future__ import annotations

import math
import os
import struct
import tempfile
import threading
from dataclasses import dataclass
from itertools import product
from typing import (
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from ..boxes.bconstraints import BoxQuery
from ..boxes.box import Box, enclose_all
from . import columnar
from .columnar import pack_floats, unpack_floats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import SpatialObject, SpatialTable

#: Default PBSM tile target when no partition count is configured.
DEFAULT_TILES = 16


def mbr_may_match(mbr: Box, query: BoxQuery) -> bool:
    """Could a box inside ``mbr`` satisfy ``query``?  (Sound pruning.)

    The same containment logic R-tree node descent uses: an entry
    ``e ⊑ a`` forces ``mbr ⊓ a ≠ ∅``; ``b ⊑ e`` forces ``b ⊑ mbr``;
    ``e ⊓ c ≠ ∅`` forces ``mbr ⊓ c ≠ ∅``.
    """
    if mbr.is_empty():
        return False
    if query.inside is not None and not mbr.overlaps(query.inside):
        return False
    if (
        query.covers is not None
        and not query.covers.is_empty()
        and not query.covers.le(mbr)
    ):
        return False
    return all(mbr.overlaps(c) for c in query.overlap)


def probe_box(query: BoxQuery, extent: Box) -> Box:
    """A single box every ``query`` match must *overlap* (for pruning).

    Any row box matching the query overlaps each of its constraint boxes
    (a non-empty box inside ``a`` overlaps ``a``; one covering ``b``
    overlaps ``b``; overlap constraints by definition), so any one of
    them is a sound necessary-condition box; the smallest-volume one
    prunes best.  A query with no constraint boxes degrades to
    ``extent`` (no pruning).  The returned box may be empty — then no
    non-empty row box can match.
    """
    candidates: List[Box] = []
    if query.inside is not None:
        candidates.append(query.inside)
    if query.covers is not None and not query.covers.is_empty():
        candidates.append(query.covers)
    candidates.extend(query.overlap)
    if not candidates:
        return extent
    if any(c.is_empty() for c in candidates):
        return Box((), ())  # empty: nothing can match
    return min(candidates, key=lambda b: b.volume())


# -- STR table partitioning ---------------------------------------------------


@dataclass(frozen=True)
class Partition:
    """One spatial partition: disjoint member rows plus their MBR.

    ``indices`` holds each member's position in the owning table's
    insertion order — the coordinates' slots in the table's
    :class:`~repro.spatial.columnar.ColumnStore`, so a partition scan
    can hand the batched kernels a candidate-index array instead of
    walking row objects.  Empty for partitions built before the table
    alignment is known (none of the in-tree constructors).
    """

    pid: int
    mbr: Box
    rows: Tuple["SpatialObject", ...]
    indices: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.rows)


@dataclass(frozen=True)
class TablePartitioning:
    """An STR tiling of one table's rows into spatial partitions.

    Built by :func:`str_partition` (and cached on the table by
    :meth:`repro.spatial.table.SpatialTable.partitioning`, keyed on the
    mutation counter so any insert or reindex invalidates it).  Rows
    with empty bounding boxes are excluded — they match no box query.
    """

    table_name: str
    version: int
    target: int
    partitions: Tuple[Partition, ...]

    def __len__(self) -> int:
        return len(self.partitions)

    @property
    def total_rows(self) -> int:
        return sum(len(p) for p in self.partitions)

    def prune(self, query: BoxQuery) -> List[Partition]:
        """Partitions whose MBR could contain a row matching ``query``."""
        if query.is_unsatisfiable():
            return []
        return [p for p in self.partitions if mbr_may_match(p.mbr, query)]


def _str_tiles(
    rows: List["SpatialObject"], target: int, dim: int, d: int = 0
) -> List[List["SpatialObject"]]:
    """Recursive Sort-Tile-Recursive slicing over the centre coordinates.

    The sort key is the boxes' centre along dimension ``d``, computed by
    the columnar :func:`~repro.spatial.columnar.argsort_by_center`
    kernel — the same ``(lo + hi) / 2`` doubles under a stable sort on
    every backend, so the resulting tiling is bit-identical whether or
    not numpy is installed.
    """
    if target <= 1 or len(rows) <= 1 or d >= dim:
        return [rows]
    dims_left = dim - d
    slices = max(1, math.ceil(target ** (1.0 / dims_left)))
    perm = columnar.argsort_by_center(
        [o.box.lo[d] for o in rows], [o.box.hi[d] for o in rows]
    )
    rows = [rows[i] for i in perm]
    per_slice = math.ceil(len(rows) / slices)
    out: List[List["SpatialObject"]] = []
    for i in range(0, len(rows), per_slice):
        chunk = rows[i : i + per_slice]
        out.extend(
            _str_tiles(chunk, math.ceil(target / slices), dim, d + 1)
        )
    return out


def str_partition(
    table: "SpatialTable", n_partitions: int
) -> TablePartitioning:
    """STR-tile a table into ~``n_partitions`` disjoint spatial partitions.

    Rows are sorted by box centre along dimension 0, sliced into
    roughly ``sqrt(n)`` slabs, each slab sorted and sliced along the
    next dimension, and so on — the same tiling STR bulk loading uses
    for R-tree leaves, applied at partition granularity.  Each row lands
    in exactly one partition; partition MBRs may overlap (boxes stick
    out of their centre's tile), which is why pruning tests MBRs, not
    tiles.
    """
    if n_partitions < 1:
        raise ValueError(
            f"n_partitions must be positive, got {n_partitions}"
        )
    positions = {id(obj): i for i, obj in enumerate(table)}
    rows = [obj for obj in table if not obj.box.is_empty()]
    tiles = _str_tiles(rows, n_partitions, table.dim) if rows else []
    partitions = tuple(
        Partition(
            pid=pid,
            mbr=enclose_all(o.box for o in tile),
            rows=tuple(tile),
            indices=tuple(positions[id(o)] for o in tile),
        )
        for pid, tile in enumerate(tiles)
        if tile
    )
    return TablePartitioning(
        table_name=table.name,
        version=table._version,
        target=n_partitions,
        partitions=partitions,
    )


# -- the PBSM tile grid -------------------------------------------------------


@dataclass(frozen=True)
class TileGrid:
    """A uniform grid of half-open tiles over a joint extent.

    ``shape[d]`` tiles along dimension ``d``; tiles are addressed by a
    flat index.  Used by PBSM to co-partition both join inputs: a box is
    *replicated* into every tile it overlaps, and the reference-point
    rule (:func:`_sweep_tile`) ensures each result pair is emitted by
    exactly one tile.
    """

    extent: Box
    shape: Tuple[int, ...]
    steps: Tuple[float, ...] = ()

    def __post_init__(self):
        if not self.steps and not self.extent.is_empty():
            # Cached per-dimension tile widths: tile addressing runs in
            # the sweep's innermost loop (once per candidate pair).
            object.__setattr__(
                self,
                "steps",
                tuple(
                    (hi - lo) / s
                    for lo, hi, s in zip(
                        self.extent.lo, self.extent.hi, self.shape
                    )
                ),
            )

    @staticmethod
    def build(boxes: Iterable[Box], n_tiles: int) -> Optional["TileGrid"]:
        """Grid over the enclosing extent; ``None`` when no boxes."""
        extent = enclose_all(b for b in boxes if not b.is_empty())
        if extent.is_empty():
            return None
        return TileGrid(
            extent=extent,
            shape=TileGrid._shape_for(extent.dim, n_tiles),
        )

    @staticmethod
    def _shape_for(dim: int, n_tiles: int) -> Tuple[int, ...]:
        n = max(1, n_tiles)
        shape: List[int] = []
        remaining = n
        for d in range(dim):
            dims_left = dim - d
            s = max(1, round(remaining ** (1.0 / dims_left)))
            shape.append(s)
            remaining = max(1, math.ceil(remaining / s))
        return tuple(shape)

    @property
    def tile_count(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def _flat(self, idx: Sequence[int]) -> int:
        out = 0
        for i, s in zip(idx, self.shape):
            out = out * s + i
        return out

    def tile_of_point(self, point: Sequence[float]) -> int:
        """Flat index of the tile containing ``point`` (edges clamped)."""
        idx = []
        for d, (p, lo, s) in enumerate(
            zip(point, self.extent.lo, self.steps)
        ):
            i = int((p - lo) / s) if s > 0 else 0
            idx.append(min(self.shape[d] - 1, max(0, i)))
        return self._flat(idx)

    def tiles_overlapping(self, box: Box) -> List[int]:
        """Flat indices of every tile the (half-open) box overlaps."""
        if box.is_empty():
            return []
        clipped = box.meet(self.extent)
        if clipped.is_empty():
            return []
        ranges = []
        for d, s in enumerate(self.steps):
            if s <= 0:
                ranges.append(range(0, 1))
                continue
            lo = self.extent.lo[d]
            first = int((clipped.lo[d] - lo) / s)
            last = math.ceil((clipped.hi[d] - lo) / s) - 1
            first = min(self.shape[d] - 1, max(0, first))
            last = min(self.shape[d] - 1, max(first, last))
            ranges.append(range(first, last + 1))
        return [self._flat(idx) for idx in product(*ranges)]


@dataclass
class JoinStats:
    """Counters for one PBSM join (the benchmark's cost model)."""

    tiles: int = 0  # tile tasks actually swept (both sides non-empty)
    replicated_left: int = 0  # extra tile copies beyond the first
    replicated_right: int = 0
    pair_tests: int = 0  # candidate box-overlap tests in the sweeps
    pairs: int = 0  # result pairs after dedup
    dedup_skipped: int = 0  # boundary duplicates suppressed
    spilled_entries: int = 0  # tile entries written to spill files
    spill_flushes: int = 0  # buffer flushes to disk

    def merge_tile(self, tests: int, dups: int) -> None:
        self.tiles += 1
        self.pair_tests += tests
        self.dedup_skipped += dups


#: A tile task: ``(grid, flat tile index, left entries, right entries)``
#: with entries ``(box, position)``.  Module-level payload/worker so
#: process pools can pickle them.
_TileTask = Tuple[TileGrid, int, List[Tuple[Box, int]], List[Tuple[Box, int]]]


def _sweep_tile(task: _TileTask) -> Tuple[List[Tuple[int, int]], int, int]:
    """Plane-sweep one tile; returns ``(pairs, tests, dedup_skipped)``.

    Both entry lists are sorted by lower edge in dimension 0 and swept
    in lockstep; an active list holds the opposite side's boxes that may
    still overlap later ones.  Every candidate test is counted; a pair
    whose boxes overlap is emitted only if the reference point (the
    lower corner of the intersection) falls in *this* tile.
    """
    grid, tile, left, right = task
    if columnar.active_backend() == "numpy":
        return _sweep_tile_vectorized(grid, tile, left, right)
    left = sorted(left, key=lambda e: e[0].lo[0])
    right = sorted(right, key=lambda e: e[0].lo[0])
    pairs: List[Tuple[int, int]] = []
    tests = 0
    dups = 0
    i = j = 0
    active_left: List[Tuple[Box, int]] = []
    active_right: List[Tuple[Box, int]] = []

    def emit(lbox: Box, li: int, rbox: Box, ri: int) -> None:
        nonlocal dups
        if lbox.overlaps(rbox):
            ref = tuple(max(a, b) for a, b in zip(lbox.lo, rbox.lo))
            if grid.tile_of_point(ref) == tile:
                pairs.append((li, ri))
            else:
                dups += 1

    while i < len(left) or j < len(right):
        take_left = j >= len(right) or (
            i < len(left) and left[i][0].lo[0] <= right[j][0].lo[0]
        )
        if take_left:
            box, tag = left[i]
            i += 1
            active_right = [
                e for e in active_right if e[0].hi[0] > box.lo[0]
            ]
            for rbox, rtag in active_right:
                tests += 1
                emit(box, tag, rbox, rtag)
            active_left.append((box, tag))
        else:
            box, tag = right[j]
            j += 1
            active_left = [
                e for e in active_left if e[0].hi[0] > box.lo[0]
            ]
            for lbox, ltag in active_left:
                tests += 1
                emit(lbox, ltag, box, tag)
            active_right.append((box, tag))
    return pairs, tests, dups


def _sweep_tile_vectorized(
    grid: TileGrid,
    tile: int,
    left: List[Tuple[Box, int]],
    right: List[Tuple[Box, int]],
) -> Tuple[List[Tuple[int, int]], int, int]:
    """The numpy per-tile sweep: same pairs, tests and dedup counts.

    The lockstep sweep tests a pair exactly when the two boxes' dim-0
    intervals strictly overlap (nonempty boxes have ``lo < hi``, so the
    active-list filter and the merge order reduce to that condition);
    this kernel counts the same set with one comparison pass, then
    finishes the overlap test on the remaining dimensions and applies
    the reference-point rule to whole candidate arrays.  Pair order
    within a tile differs from the sweep's — :func:`pbsm_join` sorts
    globally, so join results are unchanged.
    """
    np = columnar.np
    dim = grid.extent.dim
    n_right = len(right)
    rlo = tuple(
        np.fromiter(
            (b.lo[d] for b, _t in right), dtype=np.float64, count=n_right
        )
        for d in range(dim)
    )
    rhi = tuple(
        np.fromiter(
            (b.hi[d] for b, _t in right), dtype=np.float64, count=n_right
        )
        for d in range(dim)
    )
    rtags = [t for _b, t in right]
    shape, elo, steps = grid.shape, grid.extent.lo, grid.steps
    pairs: List[Tuple[int, int]] = []
    tests = 0
    dups = 0
    for lbox, ltag in left:
        mask = (rlo[0] < lbox.hi[0]) & (rhi[0] > lbox.lo[0])
        tests += int(np.count_nonzero(mask))
        for d in range(1, dim):
            mask &= rlo[d] < lbox.hi[d]
            mask &= rhi[d] > lbox.lo[d]
        cand = np.nonzero(mask)[0]
        if not len(cand):
            continue
        # Reference point: the intersection's lower corner, addressed
        # with the exact float expressions of TileGrid.tile_of_point
        # (int() truncation == floor here: ref >= extent.lo).
        flat = np.zeros(len(cand), dtype=np.int64)
        for d in range(dim):
            ref = np.maximum(rlo[d][cand], lbox.lo[d])
            if steps[d] > 0:
                idx = ((ref - elo[d]) / steps[d]).astype(np.int64)
                np.clip(idx, 0, shape[d] - 1, out=idx)
            else:
                idx = np.zeros(len(cand), dtype=np.int64)
            flat = flat * shape[d] + idx
        hit = cand[flat == tile]
        dups += len(cand) - len(hit)
        pairs.extend((ltag, rtags[j]) for j in hit.tolist())
    return pairs, tests, dups


#: A packed tile task: the grid's raw fields, the flat tile index, and
#: per side a tag tuple plus one little-endian coordinate blob — what
#: the process-pool Exchange pickles instead of per-object Box graphs
#: (``Box.__reduce__`` per entry dominated the old serialization cost).
_PackedTileTask = Tuple[
    Tuple[float, ...],  # extent lo
    Tuple[float, ...],  # extent hi
    Tuple[int, ...],  # shape
    Tuple[float, ...],  # steps (shipped, not recomputed, for bit identity)
    int,  # tile
    Tuple[int, ...],  # left tags
    bytes,  # left coords (lo then hi per box)
    Tuple[int, ...],  # right tags
    bytes,  # right coords
]


def _pack_tile_task(task: _TileTask) -> _PackedTileTask:
    """Flatten a tile task into arrays for cheap pickling."""
    grid, tile, left, right = task

    def blob(entries: List[Tuple[Box, int]]) -> bytes:
        coords: List[float] = []
        for b, _t in entries:
            coords.extend(b.lo)
            coords.extend(b.hi)
        return pack_floats(coords)

    return (
        grid.extent.lo,
        grid.extent.hi,
        grid.shape,
        grid.steps,
        tile,
        tuple(t for _b, t in left),
        blob(left),
        tuple(t for _b, t in right),
        blob(right),
    )


def _sweep_tile_packed(
    payload: _PackedTileTask,
) -> Tuple[List[Tuple[int, int]], int, int]:
    """Worker-side inverse of :func:`_pack_tile_task`; then sweep.

    Boxes rebuild bit-exactly (floats round-trip through the packed
    blob unchanged) and the grid reuses the shipped ``steps``, so the
    sweep is byte-for-byte the serial one.
    """
    elo, ehi, shape, steps, tile, ltags, lblob, rtags, rblob = payload
    grid = TileGrid(
        extent=Box._trusted(tuple(elo), tuple(ehi), empty=False),
        shape=tuple(shape),
        steps=tuple(steps),
    )
    dim = len(elo)

    def entries(
        tags: Tuple[int, ...], blob: bytes
    ) -> List[Tuple[Box, int]]:
        coords = unpack_floats(blob)
        out: List[Tuple[Box, int]] = []
        pos = 0
        for tag in tags:
            out.append(
                (
                    Box._trusted(
                        coords[pos : pos + dim],
                        coords[pos + dim : pos + 2 * dim],
                        empty=False,
                    ),
                    tag,
                )
            )
            pos += 2 * dim
        return out

    return _sweep_tile((grid, tile, entries(ltags, lblob), entries(rtags, rblob)))


# -- the Exchange driver ------------------------------------------------------


class WorkerPool:
    """A persistent ``concurrent.futures`` pool reused across queries.

    The historical :class:`Exchange` constructed (and tore down) a
    ``ProcessPoolExecutor`` on every ``run`` call — process spawn per
    query.  A ``WorkerPool`` owns one executor for its whole lifetime
    (the ``Database``/``QueryService`` lifetime in practice), created
    lazily on the first parallel dispatch and shut down by
    :meth:`close`.

    ``map`` preserves task order.  A :class:`concurrent.futures.
    BrokenExecutor` (e.g. a killed process worker) discards the broken
    executor and retries once on a fresh one (counted in
    :attr:`recreations`); a second failure propagates, which the owning
    :class:`Exchange` turns into its deterministic serial fallback.
    Task-level exceptions are *not* swallowed — a worker raising
    mid-``map`` propagates to the caller, exactly like the serial
    ``[fn(t) for t in tasks]`` would raise.
    """

    KINDS = ("thread", "process")

    def __init__(self, workers: int, kind: str = "thread"):
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown pool kind {kind!r}; expected one of {self.KINDS}"
            )
        self.workers = max(1, workers)
        self.kind = kind
        # A pool is shared by every session of its owning Database, so
        # concurrent first dispatches race the lazy construction; the
        # lock makes create/discard/close transitions single-winner
        # (two racing executor() calls would otherwise each build an
        # executor and leak one un-shutdown).
        self._lock = threading.Lock()
        self.recreations = 0  # guarded-by: _lock
        self.closed = False  # guarded-by: _lock
        self._executor = None  # guarded-by: _lock

    def _make_executor(self):
        if self.kind == "process":
            from concurrent.futures import ProcessPoolExecutor

            return ProcessPoolExecutor(max_workers=self.workers)
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=self.workers)

    def executor(self):
        """The live executor, created lazily on first use."""
        with self._lock:
            if self.closed:
                raise RuntimeError("WorkerPool is closed")
            if self._executor is None:
                self._executor = self._make_executor()
            return self._executor

    def map(self, fn, tasks: Sequence) -> List:
        """``[fn(t) for t in tasks]`` on the pool, order preserved."""
        from concurrent.futures import BrokenExecutor

        try:
            return list(self.executor().map(fn, tasks))
        except BrokenExecutor:
            # The executor is unusable (a worker died); replace it and
            # retry once — the tasks are pure, so a re-run is safe.
            with self._lock:
                self._discard_locked()
                self.recreations += 1
            return list(self.executor().map(fn, tasks))

    def _discard_locked(self) -> None:
        # Caller holds self._lock (the `_locked` suffix convention).
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def close(self) -> None:
        """Shut the executor down; the pool cannot be used afterwards."""
        with self._lock:
            self._discard_locked()
            self.closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def describe(self) -> str:
        return f"{self.kind}x{self.workers}"


class Exchange:
    """Fan independent tasks out over a worker pool, order-preserved.

    ``workers <= 1`` (or a single task) runs serially; ``kind`` selects
    ``"thread"`` (default; no pickling requirements) or ``"process"``
    (true parallelism; tasks and results must be picklable).  Pool
    creation failures (e.g. sandboxed environments refusing processes)
    fall back to the serial path, recorded in :attr:`fallbacks` — the
    results are identical either way, because task order is preserved
    and the tasks are independent.

    ``pool=`` borrows a persistent :class:`WorkerPool` (the
    ``Database``/``QueryService``-owned substrate): geometry defaults to
    the pool's and dispatches reuse its executor, so repeated queries
    pay no per-call pool construction.  Without one, each parallel
    ``run`` builds a one-shot pool as before.  The Exchange never closes
    a borrowed pool.
    """

    KINDS = ("serial", "thread", "process")

    def __init__(
        self,
        workers: int = 0,
        kind: str = "thread",
        pool: Optional[WorkerPool] = None,
    ):
        if pool is not None:
            workers = workers or pool.workers
            kind = pool.kind if kind == "thread" else kind
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown exchange kind {kind!r}; expected one of {self.KINDS}"
            )
        self.workers = max(0, workers)
        self.kind = kind
        self.pool = pool
        self.fallbacks = 0

    def describe(self) -> str:
        if self.workers <= 1 or self.kind == "serial":
            return "serial"
        return f"{self.kind}x{self.workers}"

    def uses_processes(self, n_tasks: int) -> bool:
        """Whether :meth:`run` would attempt a process pool for
        ``n_tasks`` tasks — i.e. whether payloads will be pickled.
        Callers use this to swap in compactly-serializable task forms."""
        return (
            self.kind == "process" and self.workers > 1 and n_tasks > 1
        )

    def run(self, fn, tasks: Sequence) -> List:
        """``[fn(t) for t in tasks]`` — possibly on a pool, same order."""
        tasks = list(tasks)
        if self.workers <= 1 or self.kind == "serial" or len(tasks) <= 1:
            return [fn(t) for t in tasks]
        from concurrent.futures import BrokenExecutor

        # Worker spawn is lazy (a refused process surfaces inside
        # map(), not at construction), so the whole pool use is guarded;
        # re-running serially is safe because tasks are independent and
        # pure.  Note the guarded exceptions are pool-infrastructure
        # failures; a genuine task-level error re-raises identically on
        # the serial re-run, so results never depend on the path taken.
        try:
            if (
                self.pool is not None
                and not self.pool.closed
                and self.pool.kind == self.kind
            ):
                return self.pool.map(fn, tasks)
            if self.kind == "process":
                from concurrent.futures import ProcessPoolExecutor

                pool = ProcessPoolExecutor(max_workers=self.workers)
            else:
                from concurrent.futures import ThreadPoolExecutor

                pool = ThreadPoolExecutor(max_workers=self.workers)
            with pool:
                return list(pool.map(fn, tasks))
        except (
            OSError,
            NotImplementedError,
            PermissionError,
            BrokenExecutor,
        ):
            self.fallbacks += 1
            return [fn(t) for t in tasks]


# -- out-of-core tile queues --------------------------------------------------


class TileSpill:
    """Disk-backed tile buckets for the out-of-core PBSM path.

    Entries (``(box, int tag)``) are buffered in memory per
    ``(tile, side)`` bucket; :meth:`flush` appends every buffer to its
    bucket's spill file and drops the buffers, bounding resident memory
    by the flush budget rather than the full replicated input.  Records
    are fixed-size — one little-endian int64 tag plus ``2 * dim``
    little-endian doubles (the snapshot format's packed-float codec) —
    so coordinates round-trip bit-exactly and :meth:`load` reproduces
    the exact append order: file records first, then any unflushed
    buffer residue.
    """

    def __init__(self, dim: int, directory: Optional[str] = None):
        self.dim = dim
        self._record = struct.Struct(f"<q{2 * dim}d")
        self._buffers: Dict[Tuple[int, int], List[Tuple[Box, int]]] = {}
        self._paths: Dict[Tuple[int, int], str] = {}
        self._dir = directory
        self._own_dir = directory is None
        self.buffered = 0
        self.spilled_entries = 0
        self.flushes = 0

    def _path(self, key: Tuple[int, int]) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-spill-")
        path = self._paths.get(key)
        if path is None:
            tile, side = key
            path = os.path.join(self._dir, f"t{tile}.{side}")
            self._paths[key] = path
        return path

    def add(self, tile: int, side: int, box: Box, tag: int) -> None:
        """Buffer one entry for ``(tile, side)``."""
        self._buffers.setdefault((tile, side), []).append((box, tag))
        self.buffered += 1

    def flush(self) -> None:
        """Append every buffered entry to its spill file; drop buffers."""
        if not self.buffered:
            return
        for key, entries in self._buffers.items():
            if not entries:
                continue
            with open(self._path(key), "ab") as fh:
                for box, tag in entries:
                    fh.write(self._record.pack(tag, *box.lo, *box.hi))
            self.spilled_entries += len(entries)
        self._buffers.clear()
        self.buffered = 0
        self.flushes += 1

    def tiles(self) -> List[int]:
        """Tile ids holding any entry (buffered or spilled), sorted."""
        seen = {t for t, _s in self._buffers if self._buffers[(t, _s)]}
        seen.update(t for t, _s in self._paths)
        return sorted(seen)

    def load(self, tile: int, side: int) -> List[Tuple[Box, int]]:
        """One bucket's entries, in original append order."""
        key = (tile, side)
        out: List[Tuple[Box, int]] = []
        path = self._paths.get(key)
        if path is not None and os.path.exists(path):
            dim = self.dim
            with open(path, "rb") as fh:
                blob = fh.read()
            for rec in self._record.iter_unpack(blob):
                out.append(
                    (
                        Box._trusted(
                            rec[1 : 1 + dim],
                            rec[1 + dim : 1 + 2 * dim],
                            empty=False,
                        ),
                        rec[0],
                    )
                )
        out.extend(self._buffers.get(key, ()))
        return out

    def close(self) -> None:
        """Delete every spill file (and the owned directory)."""
        self._buffers.clear()
        self.buffered = 0
        for path in self._paths.values():
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
        self._paths.clear()
        if self._own_dir and self._dir is not None:
            try:
                os.rmdir(self._dir)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._dir = None

    def __enter__(self) -> "TileSpill":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the PBSM join ------------------------------------------------------------


def pbsm_join(
    left: Sequence[Tuple[Box, object]],
    right: Sequence[Tuple[Box, object]],
    n_tiles: int = DEFAULT_TILES,
    exchange: Optional[Exchange] = None,
    stats: Optional[JoinStats] = None,
    spill: Optional[int] = None,
) -> List[Tuple[object, object]]:
    """Partition-based spatial-merge overlap join of two box sequences.

    Co-partitions both inputs on a shared :class:`TileGrid` (boxes
    replicated into every tile they overlap), plane-sweeps each tile,
    and dedupes boundary duplicates with the reference-point rule.
    Returns ``(left_value, right_value)`` pairs whose boxes overlap,
    sorted by input positions — deterministic, and identical for serial
    and parallel execution.

    ``spill=N`` enables the out-of-core path: tile buckets flush to a
    :class:`TileSpill` every ``N`` buffered entries and tile tasks are
    streamed back in bounded chunks, so resident memory is ~``N``
    replicated entries plus one chunk of tasks instead of the whole
    replicated input.  Entry order per bucket is preserved exactly, so
    the pairs, tests and dedup counters match the in-memory path
    bit-for-bit.
    """
    lefts = [(b, k) for k, (b, _v) in enumerate(left) if not b.is_empty()]
    rights = [(b, k) for k, (b, _v) in enumerate(right) if not b.is_empty()]
    if not lefts or not rights:
        return []
    grid = TileGrid.build(
        [*(b for b, _ in lefts), *(b for b, _ in rights)], n_tiles
    )
    assert grid is not None  # non-empty inputs imply a non-empty extent
    exchange = exchange or Exchange()
    repl_left = repl_right = 0
    results: List[Tuple[List[Tuple[int, int]], int, int]] = []
    if spill is not None and spill > 0:
        with TileSpill(dim=grid.extent.dim) as store:
            for side, entries in ((0, lefts), (1, rights)):
                for b, k in entries:
                    tiles = grid.tiles_overlapping(b)
                    if side == 0:
                        repl_left += len(tiles) - 1
                    else:
                        repl_right += len(tiles) - 1
                    for t in tiles:
                        store.add(t, side, b, k)
                        if store.buffered >= spill:
                            store.flush()
            # Stream tile tasks in chunks of ~the worker count: at any
            # moment only those tiles' entries are resident.
            chunk = max(1, exchange.workers or 1)
            tile_ids = store.tiles()
            for start in range(0, len(tile_ids), chunk):
                tasks = []
                for t in tile_ids[start : start + chunk]:
                    ls = store.load(t, 0)
                    rs = store.load(t, 1)
                    if ls and rs:
                        tasks.append((grid, t, ls, rs))
                if not tasks:
                    continue
                if exchange.uses_processes(len(tasks)):
                    results.extend(
                        exchange.run(
                            _sweep_tile_packed,
                            [_pack_tile_task(t) for t in tasks],
                        )
                    )
                else:
                    results.extend(exchange.run(_sweep_tile, tasks))
            if stats is not None:
                stats.spilled_entries += store.spilled_entries
                stats.spill_flushes += store.flushes
    else:
        buckets: Dict[int, Tuple[List, List]] = {}
        for b, k in lefts:
            tiles = grid.tiles_overlapping(b)
            repl_left += len(tiles) - 1
            for t in tiles:
                buckets.setdefault(t, ([], []))[0].append((b, k))
        for b, k in rights:
            tiles = grid.tiles_overlapping(b)
            repl_right += len(tiles) - 1
            for t in tiles:
                buckets.setdefault(t, ([], []))[1].append((b, k))
        tasks: List[_TileTask] = [
            (grid, t, ls, rs)
            for t, (ls, rs) in sorted(buckets.items())
            if ls and rs
        ]
        if exchange.uses_processes(len(tasks)):
            # Process workers receive packed coordinate blobs, not
            # pickled Box object graphs; a pool-creation fallback to
            # serial still runs the same packed tasks, so results never
            # depend on it.
            results = exchange.run(
                _sweep_tile_packed, [_pack_tile_task(t) for t in tasks]
            )
        else:
            results = exchange.run(_sweep_tile, tasks)
    pairs: List[Tuple[int, int]] = []
    for tile_pairs, tests, dups in results:
        pairs.extend(tile_pairs)
        if stats is not None:
            stats.merge_tile(tests, dups)
    pairs.sort()
    if stats is not None:
        stats.replicated_left += repl_left
        stats.replicated_right += repl_right
        stats.pairs += len(pairs)
    return [(left[i][1], right[j][1]) for i, j in pairs]
