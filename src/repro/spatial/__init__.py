"""The spatial-database substrate (simulated per DESIGN.md §3).

R-tree [6], grid file [9], the Figure 3 box-as-point range-query
reduction, a z-order join in the style of PROBE [10], and the
:class:`SpatialTable` facade the query engine uses.
"""

from .columnar import (
    BACKENDS,
    HAVE_NUMPY,
    ColumnStore,
    active_backend,
    forced_backend,
    pack_floats,
    unpack_floats,
)
from .gridfile import GridFile, GridStats
from .join import index_nested_loop_join, synchronized_rtree_join
from .partition import (
    DEFAULT_TILES,
    Exchange,
    JoinStats,
    Partition,
    TablePartitioning,
    TileGrid,
    TileSpill,
    WorkerPool,
    mbr_may_match,
    pbsm_join,
    probe_box,
    str_partition,
)
from .rangequery import (
    OPEN_EPS,
    PointRange,
    compile_range,
    figure3_rectangle,
    matches_via_point,
)
from .rtree import RTree, RTreeStats
from .shard import (
    ShardColumnBlock,
    ShardJoinStats,
    ShardedTable,
    TableShard,
)
from .snapshot import (
    FORMAT_VERSION,
    read_snapshot,
    region_from_jsonable,
    region_to_jsonable,
    table_from_jsonable,
    table_to_jsonable,
    write_snapshot,
)
from .table import ProbeCache, SpatialObject, SpatialTable
from .zorder import (
    ZGrid,
    ZOrderIndex,
    ZRange,
    interleave,
    interleave_batch,
    zorder_join,
    zorder_overlap_query,
)

__all__ = [
    "BACKENDS",
    "ColumnStore",
    "DEFAULT_TILES",
    "Exchange",
    "FORMAT_VERSION",
    "GridFile",
    "HAVE_NUMPY",
    "GridStats",
    "JoinStats",
    "OPEN_EPS",
    "Partition",
    "PointRange",
    "ProbeCache",
    "RTree",
    "RTreeStats",
    "ShardColumnBlock",
    "ShardJoinStats",
    "ShardedTable",
    "SpatialObject",
    "SpatialTable",
    "TablePartitioning",
    "TableShard",
    "TileGrid",
    "TileSpill",
    "WorkerPool",
    "ZGrid",
    "ZOrderIndex",
    "ZRange",
    "active_backend",
    "compile_range",
    "forced_backend",
    "index_nested_loop_join",
    "figure3_rectangle",
    "interleave",
    "interleave_batch",
    "matches_via_point",
    "mbr_may_match",
    "pack_floats",
    "pbsm_join",
    "probe_box",
    "read_snapshot",
    "region_from_jsonable",
    "region_to_jsonable",
    "str_partition",
    "synchronized_rtree_join",
    "table_from_jsonable",
    "table_to_jsonable",
    "unpack_floats",
    "write_snapshot",
    "zorder_join",
    "zorder_overlap_query",
]
