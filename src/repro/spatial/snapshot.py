"""Versioned on-disk snapshots of spatial databases.

A process serving the paper's queries should not pay a full STR build,
statistics scan, and partitioning sort on every start.  This module
serializes everything a warm :class:`~repro.spatial.table.SpatialTable`
holds — rows, the packed R-tree (as flat node arrays, *not* a pickled
object graph), the :class:`~repro.engine.catalog.TableStatistics`
cache, and the STR :class:`~repro.spatial.partition.TablePartitioning`
— into one JSON file, and loads it back without re-running any of those
builds:

* rows are stored in insertion order; regions dump their exact disjoint
  box representation, so the loaded rows are bit-identical;
* the R-tree is dumped with
  :meth:`~repro.spatial.rtree.RTree.to_node_arrays` (preorder node
  arrays whose leaf values are row indices) and reattached node-for-
  node on load — no STR sort, identical structure, identical node-read
  counts;
* grid and scan backends rebuild deterministically by inserting rows in
  saved order (their builds are linear — the R-tree's sort is the
  startup cost worth snapshotting);
* cached statistics reference their row sample by index, and the
  partitioning stores per-partition row indices, so the loaded table
  answers :meth:`statistics`/:meth:`partitioning` from the snapshot;
* a cached :class:`~repro.spatial.shard.ShardedTable` stores each
  shard's member row slots in shard row order, so the loaded table's
  :meth:`sharding` rebuilds identical shards (same membership, same
  tags, same answer streams) without re-running the STR sort.

Writes are atomic: the file is written to a sibling temporary path and
moved into place with ``os.replace``, so a crashed save never leaves a
truncated snapshot where a good one was.

The format is versioned (:data:`FORMAT_VERSION`); loading a snapshot
with an unknown format name or newer version raises
:class:`~repro.errors.SnapshotError` instead of misparsing it.
"""

from __future__ import annotations

import base64
import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..algebra.regions import Region
from ..boxes.box import EMPTY_BOX, Box, box_from_jsonable, box_to_jsonable
from ..errors import SnapshotError
from .columnar import pack_floats, unpack_floats
from .partition import Partition, TablePartitioning
from .shard import ShardedTable
from .rtree import RTree
from .table import SpatialObject, SpatialTable

#: Format magic: identifies the file as one of ours.
FORMAT_NAME = "repro-snapshot"

#: Current format version; bump on incompatible layout changes.
FORMAT_VERSION = 1


# -- oid encoding --------------------------------------------------------------
# Row identifiers are arbitrary hashables in memory; on disk we support
# the JSON scalars plus tuples (tagged, so a list-valued payload cannot
# collide with a tuple oid).

def _encode_oid(oid: object) -> object:
    if oid is None or isinstance(oid, (bool, int, float, str)):
        return oid
    if isinstance(oid, tuple):
        return {"tuple": [_encode_oid(item) for item in oid]}
    raise SnapshotError(
        f"cannot serialize oid {oid!r} of type {type(oid).__name__}; "
        f"snapshots support JSON scalars and tuples of them"
    )


def _decode_oid(data: object) -> object:
    if isinstance(data, dict):
        return tuple(_decode_oid(item) for item in data["tuple"])
    return data


# -- packed float arrays -------------------------------------------------------
# The bulk of a snapshot is box coordinates: every row's region boxes
# plus every r-tree node entry.  Dumped as JSON number lists they
# dominate the load's parse time; packed as little-endian doubles in a
# base64 string they parse in one ``struct.unpack`` call and round-trip
# bit-exactly.  Everything else (oids, counts, statistics, partitioning)
# stays plain JSON.  The raw packing lives in
# :mod:`repro.spatial.columnar` (the process-pool Exchange ships tile
# payloads through the same helpers); here it is base64-armored for JSON.

def _pack_floats(values: Sequence[float]) -> str:
    return base64.b64encode(pack_floats(values)).decode("ascii")


def _unpack_floats(blob: str) -> Tuple[float, ...]:
    return unpack_floats(base64.b64decode(blob))


def region_to_jsonable(region: Region) -> List[List[List[float]]]:
    """The region's exact disjoint-box representation as JSON lists."""
    return [box_to_jsonable(b) for b in region.boxes]


def region_from_jsonable(data: Sequence) -> Region:
    """Inverse of :func:`region_to_jsonable` (boxes already disjoint)."""
    return Region(tuple(box_from_jsonable(b) for b in data))


# -- table serialization -------------------------------------------------------
def table_to_jsonable(table: SpatialTable) -> dict:
    """Everything needed to reconstruct a warm table, as JSON data."""
    # Snapshots serialize only packed base structures, so a pending
    # write delta is folded in first; the loaded table starts clean.
    table.repack()
    rows = list(table)
    row_index = {id(obj): i for i, obj in enumerate(rows)}
    coords: List[float] = []
    box_counts: List[int] = []
    for obj in rows:
        box_counts.append(len(obj.region.boxes))
        for b in obj.region.boxes:
            coords.extend(b.lo)
            coords.extend(b.hi)
    data: dict = {
        "name": table.name,
        "dim": table.dim,
        "index": table.index_kind,
        "universe": (
            box_to_jsonable(table.universe)
            if table.universe is not None
            else None
        ),
        "split_method": table.split_method,
        "node_capacity": table.node_capacity,
        "table_version": table._version,
        # Columnar rows: oids + per-row box counts + one packed
        # coordinate blob (lo then hi per box, row-major).
        "rows": {
            "oids": [_encode_oid(obj.oid) for obj in rows],
            "box_counts": box_counts,
            "coords": _pack_floats(coords),
        },
    }
    if table.index_kind == "rtree":
        arrays = table._rtree.to_node_arrays(
            lambda obj: row_index[id(obj)]
        )
        arrays["bounds"] = _pack_floats(arrays["bounds"])
        data["rtree"] = arrays
    if table._stats_version == table._version:
        data["statistics"] = [
            {"key": list(key), "stats": stats.to_dict(row_index)}
            for key, stats in table._stats_cache.items()
        ]
    if (
        table._partitioning_cache is not None
        and table._partitioning_key is not None
        and table._partitioning_key[0] == table._version
    ):
        tiling = table._partitioning_cache
        data["partitioning"] = {
            "target": tiling.target,
            "partitions": [
                {
                    "pid": p.pid,
                    "mbr": box_to_jsonable(p.mbr),
                    "rows": [row_index[id(obj)] for obj in p.rows],
                }
                for p in tiling.partitions
            ],
        }
    if (
        table._sharding_cache is not None
        and table._sharding_key is not None
        and table._sharding_key[0] == table._version
    ):
        sharding = table._sharding_cache
        data["sharding"] = {
            "target": sharding.target,
            # Per-shard member row slots in shard row order — enough to
            # rebuild identical shards without re-running the STR sort.
            "shards": [
                [row_index[id(obj)] for obj in shard.table]
                for shard in sharding.shards
            ],
        }
    return data


def table_from_jsonable(data: dict) -> SpatialTable:
    """Rebuild a warm table from :func:`table_to_jsonable` output.

    Rows are installed directly (no per-insert version bumps), the
    R-tree is reattached from its node arrays, and the statistics and
    partitioning caches are re-seeded, so the loaded table plans and
    probes exactly like the one that was saved.
    """
    from ..engine.catalog import TableStatistics

    universe = (
        box_from_jsonable(data["universe"])
        if data.get("universe") is not None
        else None
    )
    table = SpatialTable(
        str(data["name"]),
        int(data["dim"]),
        index=str(data["index"]),
        universe=universe,
        split_method=str(data["split_method"]),
        node_capacity=int(data["node_capacity"]),
    )
    dim = int(data["dim"])
    rows_data = data["rows"]
    coords = _unpack_floats(rows_data["coords"])
    rows: List[SpatialObject] = []
    objects: Dict[object, SpatialObject] = {}
    pos = 0
    for oid_data, nboxes in zip(
        rows_data["oids"], rows_data["box_counts"]
    ):
        boxes = []
        for _ in range(nboxes):
            # Region boxes are nonempty by invariant — no per-box check.
            boxes.append(
                Box._trusted(
                    coords[pos : pos + dim],
                    coords[pos + dim : pos + 2 * dim],
                    empty=False,
                )
            )
            pos += 2 * dim
        region = Region._trusted(tuple(boxes))
        if nboxes == 1:
            bbox = boxes[0]
        elif boxes:
            blo, bhi = list(boxes[0].lo), list(boxes[0].hi)
            for b in boxes[1:]:
                for d in range(dim):
                    if b.lo[d] < blo[d]:
                        blo[d] = b.lo[d]
                    if b.hi[d] > bhi[d]:
                        bhi[d] = b.hi[d]
            bbox = Box._trusted(tuple(blo), tuple(bhi), empty=False)
        else:
            bbox = EMPTY_BOX
        obj = SpatialObject(
            oid=_decode_oid(oid_data), region=region, box=bbox
        )
        rows.append(obj)
        objects[obj.oid] = obj
        # Rows bypass insert() here, so the columnar mirror fills
        # directly from the packed payload (same coords, same order).
        if bbox.is_empty():
            table._columns.append(bbox, obj)
        else:
            table._columns.append_coords(bbox.lo, bbox.hi, obj)
    table._objects = objects
    table._version = int(data["table_version"])
    if table.index_kind == "rtree":
        arrays = dict(data["rtree"])
        arrays["bounds"] = _unpack_floats(arrays["bounds"])
        table._rtree = RTree.from_node_arrays(arrays, rows)
    elif table.index_kind == "grid":
        for obj in rows:
            if not obj.box.is_empty():
                table._grid.insert(obj.box.to_point(), obj)
        table._grid.stats.reset()
    if "statistics" in data:
        table._stats_cache = {
            tuple(entry["key"]): TableStatistics.from_dict(
                entry["stats"], rows
            )
            for entry in data["statistics"]
        }
        table._stats_version = table._version
    part = data.get("partitioning")
    if part is not None:
        table._partitioning_cache = TablePartitioning(
            table_name=table.name,
            version=table._version,
            target=int(part["target"]),
            partitions=tuple(
                Partition(
                    pid=int(p["pid"]),
                    mbr=box_from_jsonable(p["mbr"]),
                    rows=tuple(rows[int(i)] for i in p["rows"]),
                    indices=tuple(int(i) for i in p["rows"]),
                )
                for p in part["partitions"]
            ),
        )
        table._partitioning_key = (table._version, 0, int(part["target"]))
    shard_data = data.get("sharding")
    if shard_data is not None:
        target = int(shard_data["target"])
        table._sharding_cache = ShardedTable.from_row_groups(
            table,
            target,
            [
                [rows[int(i)] for i in group]
                for group in shard_data["shards"]
            ],
        )
        table._sharding_key = (table._version, 0, target)
    return table


# -- database files ------------------------------------------------------------
def write_snapshot(
    path: str,
    tables: Dict[str, SpatialTable],
    bindings: Optional[Dict[str, Region]] = None,
) -> None:
    """Atomically write a snapshot file for named tables and bindings.

    ``tables`` is keyed the way queries reference them (variable names);
    ``bindings`` are named constant regions.  The file appears complete
    or not at all (tmp file + ``os.replace``).
    """
    payload = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "tables": {
            str(key): table_to_jsonable(t) for key, t in tables.items()
        },
        "bindings": {
            str(name): region_to_jsonable(r)
            for name, r in (bindings or {}).items()
        },
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, separators=(",", ":"))
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash cleanup
            os.unlink(tmp)


def read_snapshot(
    path: str,
) -> Tuple[Dict[str, SpatialTable], Dict[str, Region]]:
    """Load ``(tables, bindings)`` from a snapshot file.

    Raises :class:`~repro.errors.SnapshotError` for a missing file,
    malformed JSON, a foreign file, or a newer format version.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"snapshot {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != FORMAT_NAME:
        raise SnapshotError(
            f"{path!r} is not a {FORMAT_NAME} file"
        )
    version = payload.get("version")
    if not isinstance(version, int) or version > FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {version!r}; this "
            f"build reads up to {FORMAT_VERSION}"
        )
    tables = {
        key: table_from_jsonable(data)
        for key, data in payload["tables"].items()
    }
    bindings = {
        name: region_from_jsonable(data)
        for name, data in payload.get("bindings", {}).items()
    }
    return tables, bindings
