"""repro — Constraint-Based Query Optimization for Spatial Databases.

A full reproduction of Helm, Marriott & Odersky (PODS 1991): systems of
positive and negative Boolean constraints are compiled into a triangular
solved form (Algorithm 1), approximated by bounding-box functions computed
from Blake canonical forms (Algorithm 2), and executed as one range query
per retrieval step against a spatial index.

Subpackages
-----------
``repro.boolean``
    Symbolic formulas, Blake canonical form, BDDs, simplification.
``repro.algebra``
    Boolean algebra carriers: bits, sets, intervals, k-dim regions.
``repro.constraints``
    Constraint systems, projection (``proj``), triangular form, the
    atomless decision procedure, the textual constraint syntax.
``repro.boxes``
    Bounding boxes, bounding-box functions, best L/U approximations.
``repro.spatial``
    R-tree, grid file, the box-as-point single range query, z-order join.
``repro.engine``
    The query compiler and executors (naive / exact / box-plan).
``repro.datagen``
    Synthetic maps and workloads for examples and benchmarks.

Quickstart
----------
>>> from repro import Database, Session
>>> # see examples/quickstart.py for the paper's smugglers query and
>>> # examples/service_quickstart.py for snapshots + the query service
"""

from .algebra import (
    BitVectorAlgebra,
    IntervalAlgebra,
    IntervalSet,
    PowersetAlgebra,
    Region,
    RegionAlgebra,
    TwoValuedAlgebra,
)
from .boolean import (
    FALSE,
    TRUE,
    Formula,
    Var,
    blake_canonical_form,
    conj,
    disj,
    neg,
    parse,
    simplify,
    to_str,
    to_unicode,
    var,
    variables,
)
from .boxes import (
    Box,
    BoxQuery,
    approximate,
    compile_solved_constraint,
    lower_approximation,
    upper_approximation,
)
from .constraints import (
    ConstraintSystem,
    build_witness,
    entails_atomless,
    equal,
    nonempty,
    not_subset,
    overlaps,
    parse_system,
    project,
    satisfiable_atomless,
    smugglers_system,
    subset,
    triangular_form,
)
from .database import Database, QueryResult, Session
from .engine import (
    SpatialQuery,
    compile_query,
    execute,
    run_query,
)
from .errors import (
    CompilationError,
    ParseError,
    ReproError,
    UnsatisfiableError,
)
from .spatial import RTree, SpatialTable

__version__ = "1.0.0"

__all__ = [
    "BitVectorAlgebra",
    "Box",
    "BoxQuery",
    "CompilationError",
    "ConstraintSystem",
    "Database",
    "FALSE",
    "Formula",
    "IntervalAlgebra",
    "IntervalSet",
    "ParseError",
    "PowersetAlgebra",
    "QueryResult",
    "RTree",
    "Region",
    "RegionAlgebra",
    "ReproError",
    "Session",
    "SpatialQuery",
    "SpatialTable",
    "TRUE",
    "TwoValuedAlgebra",
    "UnsatisfiableError",
    "Var",
    "approximate",
    "blake_canonical_form",
    "build_witness",
    "compile_query",
    "compile_solved_constraint",
    "conj",
    "disj",
    "entails_atomless",
    "equal",
    "execute",
    "lower_approximation",
    "neg",
    "nonempty",
    "not_subset",
    "overlaps",
    "parse",
    "parse_system",
    "project",
    "run_query",
    "satisfiable_atomless",
    "simplify",
    "smugglers_system",
    "subset",
    "to_str",
    "to_unicode",
    "triangular_form",
    "upper_approximation",
    "var",
    "variables",
    "__version__",
]
