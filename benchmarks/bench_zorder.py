"""E8 — comparison with the z-order (PROBE) spatial join [10].

The paper positions its method against Orenstein-Manola: their z-order
join handles the binary overlay query with a special-purpose structure;
the constraint method handles arbitrary Boolean systems on a generic
range-query index.  On the one query both support (``x ∧ y ≠ 0``) we
compare:

* the z-order merge join, and
* our compiled box plan over an R-tree.

Both must return the same pairs; the report shows the cost shape.  The
paper's remark "it seems possible to extend our approach to make use of
z-ordering methods" is not evaluated (no hybrid is built).
"""

import random


from benchmarks.conftest import report
from repro.algebra import Region
from repro.boxes import Box
from repro.engine import compile_query, execute
from repro.spatial import ZGrid, ZOrderIndex, zorder_join

N = 120
UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _boxes(seed, n=N):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        lo = (rng.uniform(0, 92), rng.uniform(0, 92))
        out.append(
            Box(lo, (lo[0] + rng.uniform(1, 8), lo[1] + rng.uniform(1, 8)))
        )
    return out


LEFT = _boxes(1)
RIGHT = _boxes(2)


def _zorder_run():
    grid = ZGrid(UNIVERSE, levels=6)
    left = ZOrderIndex(grid)
    right = ZOrderIndex(grid)
    for i, b in enumerate(LEFT):
        left.insert(b, i)
    for j, b in enumerate(RIGHT):
        right.insert(b, j)
    return sorted(zorder_join(left, right, exact=True))


def _boxplan_run():
    from repro.engine import SpatialQuery
    from repro.constraints import ConstraintSystem, overlaps
    from repro.spatial import SpatialTable

    lt = SpatialTable("L", 2, universe=UNIVERSE)
    rt = SpatialTable("R", 2, universe=UNIVERSE)
    for i, b in enumerate(LEFT):
        lt.insert(i, Region.from_box(b))
    for j, b in enumerate(RIGHT):
        rt.insert(j, Region.from_box(b))
    q = SpatialQuery(
        system=ConstraintSystem.build(overlaps("x", "y")),
        tables={"x": lt, "y": rt},
        order=["x", "y"],
    )
    plan = compile_query(q)
    answers, stats = execute(plan, "boxplan")
    return sorted(
        (a["x"].oid, a["y"].oid) for a in answers
    ), stats


def test_zorder_join(benchmark):
    pairs = benchmark(_zorder_run)
    expected = sorted(
        (i, j)
        for i, lb in enumerate(LEFT)
        for j, rb in enumerate(RIGHT)
        if lb.overlaps(rb)
    )
    assert pairs == expected
    benchmark.extra_info["pairs"] = len(pairs)


def test_boxplan_join(benchmark):
    (pairs, stats) = benchmark(_boxplan_run)
    expected = sorted(
        (i, j)
        for i, lb in enumerate(LEFT)
        for j, rb in enumerate(RIGHT)
        if lb.overlaps(rb)
    )
    assert pairs == expected
    benchmark.extra_info.update(stats.as_dict())
    report(
        "E8: overlay join result agreement",
        [
            {
                "method": "zorder-merge",
                "pairs": len(expected),
            },
            {
                "method": "boxplan+rtree",
                "pairs": len(pairs),
            },
        ],
        ["method", "pairs"],
    )
