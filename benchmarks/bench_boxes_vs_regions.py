"""E6 — bounding-box ops vs exact region ops.

Section 4's economic argument: "intersections and unions over bounding
boxes are relatively cheap to compute" compared to "intersections,
unions and complements of arbitrary retrieved regions".  We measure the
primitive-operation gap directly on representative operands.
"""

import random


from benchmarks.conftest import report
from repro.algebra import Region, RegionAlgebra
from repro.boxes import Box

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))


def _fragmented_region(rng: random.Random, pieces: int) -> Region:
    boxes = []
    for _ in range(pieces):
        lo = (rng.uniform(0, 90), rng.uniform(0, 90))
        boxes.append(
            Box(lo, (lo[0] + rng.uniform(2, 10), lo[1] + rng.uniform(2, 10)))
        )
    return Region.from_boxes(boxes)


rng = random.Random(0)
ALG = RegionAlgebra(UNIVERSE)
REGIONS = [_fragmented_region(rng, 12) for _ in range(16)]
BOXES = [r.bounding_box() for r in REGIONS]


def test_box_meet(benchmark):
    def run():
        out = BOXES[0]
        for b in BOXES[1:]:
            out = out.meet(b)
        return out

    benchmark(run)


def test_box_enclose(benchmark):
    def run():
        out = BOXES[0]
        for b in BOXES[1:]:
            out = out.enclose(b)
        return out

    benchmark(run)


def test_region_meet(benchmark):
    def run():
        out = REGIONS[0]
        for r in REGIONS[1:]:
            out = ALG.meet(out, r)
        return out

    benchmark(run)


def test_region_join(benchmark):
    def run():
        out = REGIONS[0]
        for r in REGIONS[1:]:
            out = ALG.join(out, r)
        return out

    benchmark(run)


def test_region_complement(benchmark):
    benchmark(ALG.complement, REGIONS[0])


def test_gap_report():
    """Single-shot wall-clock comparison for the report table."""
    import time

    def clock(fn, reps=200):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        return (time.perf_counter() - t0) / reps * 1e6  # µs

    a, b = REGIONS[0], REGIONS[1]
    ba, bb = BOXES[0], BOXES[1]
    rows = [
        {"op": "box meet", "us": f"{clock(lambda: ba.meet(bb)):.2f}"},
        {"op": "box enclose", "us": f"{clock(lambda: ba.enclose(bb)):.2f}"},
        {"op": "region meet", "us": f"{clock(lambda: ALG.meet(a, b)):.2f}"},
        {"op": "region join", "us": f"{clock(lambda: ALG.join(a, b)):.2f}"},
        {
            "op": "region complement",
            "us": f"{clock(lambda: ALG.complement(a), reps=50):.2f}",
        },
    ]
    text = report("E6: primitive op costs (µs/op)", rows, ["op", "us"])
    box_cost = float(rows[0]["us"])
    region_cost = float(rows[2]["us"])
    # The paper's premise: boxes are much cheaper than regions.
    assert box_cost * 5 < region_cost, text
