"""E9 — retrieval-order ablation.

The paper picks its order "arbitrarily" (Section 2).  This ablation
quantifies what the choice costs: all 6 orders of the smugglers query
are executed and their intermediate-result sizes compared; the planner's
greedy, raw-estimate and histogram-catalog choices are evaluated against
the best observed order.

``REPRO_BENCH_ORDER_N`` scales the per-table row count (default 18; the
CI smoke job runs a reduced scale).
"""

import os

import pytest

from benchmarks.conftest import report
from repro.datagen import smugglers_query
from repro.engine import (
    SpatialQuery,
    choose_order,
    compile_query,
    enumerate_orders,
    execute,
    plan_order,
)

N = int(os.environ.get("REPRO_BENCH_ORDER_N", "18"))

_rows = []


def _query():
    q, _ = smugglers_query(seed=21, n_towns=N, n_roads=N, states_grid=(3, 3))
    return q


ORDERS = list(enumerate_orders(_query()))


@pytest.mark.parametrize("order", ORDERS, ids=lambda o: "-".join(o))
def test_order(benchmark, order):
    q = _query()

    def run():
        plan = compile_query(q, order=order)
        return execute(plan, "boxplan")

    answers, stats = benchmark(run)
    _rows.append(
        {
            "order": "-".join(order),
            "partials": stats.partial_tuples,
            "candidates": stats.total_candidates,
            "region_ops": stats.region_ops,
            "tuples": stats.tuples_emitted,
        }
    )
    benchmark.extra_info.update(_rows[-1])


def test_order_summary_and_planner_quality(benchmark):
    if not _rows:
        pytest.skip("order benches did not run")
    rows = sorted(_rows, key=lambda r: r["region_ops"])
    report(
        "E9: retrieval-order ablation",
        rows,
        ["order", "partials", "candidates", "region_ops", "tuples"],
    )
    # All orders find the same number of answers.
    assert len({r["tuples"] for r in rows}) == 1
    # The spread must be real (order matters).
    assert rows[0]["region_ops"] < rows[-1]["region_ops"]
    # The planner's greedy order should not be the worst one.
    q = _query()
    q_no_order = SpatialQuery(
        system=q.system, tables=q.tables, bindings=q.bindings
    )
    greedy = "-".join(choose_order(q_no_order))
    worst = rows[-1]["order"]
    by_name = {r["order"]: r for r in rows}
    assert by_name[greedy]["region_ops"] <= by_name[worst]["region_ops"]
    est = "-".join(plan_order(q_no_order, "estimate"))
    hist = "-".join(plan_order(q_no_order, "histogram"))
    # The cost-based planner must never do measurably worse than the
    # greedy heuristic it falls back to (PR acceptance criterion).
    assert by_name[hist]["partials"] <= by_name[greedy]["partials"]
    report(
        "E9: planner choices",
        [
            {"strategy": "greedy", "order": greedy,
             "partials": by_name[greedy]["partials"],
             "region_ops": by_name[greedy]["region_ops"]},
            {"strategy": "estimate", "order": est,
             "partials": by_name[est]["partials"],
             "region_ops": by_name[est]["region_ops"]},
            {"strategy": "histogram", "order": hist,
             "partials": by_name[hist]["partials"],
             "region_ops": by_name[hist]["region_ops"]},
            {"strategy": "best-observed", "order": rows[0]["order"],
             "partials": rows[0]["partials"],
             "region_ops": rows[0]["region_ops"]},
        ],
        ["strategy", "order", "partials", "region_ops"],
    )
