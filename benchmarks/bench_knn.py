#!/usr/bin/env python
"""kNN benchmark: best-first distance browsing vs the brute-force scan.

Builds STR-packed r-tree tables of random boxes at a ladder of scales
and answers k-nearest-neighbor queries two ways:

* **best-first** — the Hjaltason–Samet priority-queue browse
  (:meth:`repro.spatial.rtree.RTree.nearest`), reading only the nodes
  whose MINDIST reaches the queue front;
* **brute force** — rank every row
  (:meth:`repro.spatial.table.SpatialTable.nearest_bruteforce`), whose
  node cost is the full tree (every node is touched by a scan).

Both must return identical ``(distance, oid)`` lists for every sampled
query point and ``k``.  The CI gate: at the **largest configured
scale**, best-first must read **≤ 50%** of the nodes the brute-force
scan touches (enforced here; the workflow runs this script on every
push).  A COUNT-pushdown section additionally records the node reads a
box-level COUNT saves via cached subtree entry counts.

Usage::

    python benchmarks/bench_knn.py [--out BENCH_knn.json]

``REPRO_BENCH_KNN_SIZES`` overrides the scale ladder (CI smoke uses the
default); ``REPRO_BENCH_KNN_POINTS`` the query-point count per scale.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.algebra import Region  # noqa: E402
from repro.boxes import Box, BoxQuery  # noqa: E402
from repro.spatial import SpatialTable  # noqa: E402

SIZES = [
    int(s)
    for s in os.environ.get("REPRO_BENCH_KNN_SIZES", "500,1000,2000").split(",")
]
N_POINTS = int(os.environ.get("REPRO_BENCH_KNN_POINTS", "20"))
KS = (1, 10)
UNIVERSE_SIDE = 100.0

#: The CI gate: best-first node reads at the largest scale must be at
#: most this fraction of the nodes a brute-force scan touches.
KNN_READ_GATE = 0.5


def build_table(size: int, seed: int) -> SpatialTable:
    rng = random.Random(seed)
    universe = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))
    table = SpatialTable(f"knn{size}", 2, universe=universe)
    rows = []
    for i in range(size):
        lo = (rng.uniform(0, UNIVERSE_SIDE - 6), rng.uniform(0, UNIVERSE_SIDE - 6))
        hi = (lo[0] + rng.uniform(0.5, 6), lo[1] + rng.uniform(0.5, 6))
        rows.append((i, Region.from_box(Box(lo, hi))))
    table.bulk_insert(rows)
    return table


def query_points(seed: int, n: int):
    rng = random.Random(seed)
    return [
        (rng.uniform(0, UNIVERSE_SIDE), rng.uniform(0, UNIVERSE_SIDE))
        for _ in range(n)
    ]


def knn_row(size: int) -> dict:
    """Best-first vs brute force at one scale; returns the counter row."""
    table = build_table(size, seed=size)
    tree = table._rtree
    points = query_points(seed=size + 1, n=N_POINTS)
    total_nodes = tree.node_count()
    row = {"size": size, "points": N_POINTS, "tree_nodes": total_nodes}
    for k in KS:
        table.reset_stats()
        best = [table.nearest(p, k, access="bestfirst") for p in points]
        bestfirst_reads = tree.stats.node_reads
        pruned = tree.stats.pruned_subtrees
        brute = [table.nearest_bruteforce(p, k) for p in points]
        # The scan ranks every entry: it touches the whole tree per query.
        brute_reads = total_nodes * len(points)
        for got, want in zip(best, brute):
            got_ids = [(round(d, 9), obj.oid) for d, obj in got]
            want_ids = [(round(d, 9), obj.oid) for d, obj in want]
            assert got_ids == want_ids, (
                f"best-first kNN diverged from brute force at "
                f"size={size} k={k}"
            )
        row[f"k{k}_bestfirst_reads"] = bestfirst_reads
        row[f"k{k}_brute_reads"] = brute_reads
        row[f"k{k}_pruned_subtrees"] = pruned
        row[f"k{k}_ratio"] = round(bestfirst_reads / brute_reads, 4)
    return row


def count_pushdown_row(size: int) -> dict:
    """COUNT pushdown: subtree-count reads vs a counting traversal."""
    table = build_table(size, seed=size)
    tree = table._rtree
    rng = random.Random(size + 2)
    checked = 0
    pushdown_reads = 0
    pruned = 0
    for _ in range(N_POINTS):
        lo = (rng.uniform(0, 60), rng.uniform(0, 60))
        query = BoxQuery(
            inside=Box(lo, (lo[0] + rng.uniform(10, 40), lo[1] + rng.uniform(10, 40)))
        )
        table.reset_stats()
        got = table.count_range(query)
        pushdown_reads += tree.stats.node_reads
        pruned += tree.stats.pruned_subtrees
        want = sum(
            1 for obj in table if not obj.box.is_empty() and query.matches(obj.box)
        )
        assert got == want, f"count pushdown diverged at size={size}"
        checked += 1
    return {
        "size": size,
        "queries": checked,
        "tree_nodes": tree.node_count(),
        "pushdown_reads": pushdown_reads,
        "full_traversal_reads": tree.node_count() * checked,
        "pruned_subtrees": pruned,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/out/BENCH_knn.json")
    args = parser.parse_args(argv)

    knn_rows = [knn_row(size) for size in SIZES]
    count_rows = [count_pushdown_row(max(SIZES))]
    result = {
        "python": platform.python_version(),
        "sizes": SIZES,
        "ks": list(KS),
        "gate": KNN_READ_GATE,
        "knn": knn_rows,
        "count_pushdown": count_rows,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")

    failures = []
    for row in knn_rows:
        for k in KS:
            print(
                f"knn n={row['size']} k={k}: best-first "
                f"{row[f'k{k}_bestfirst_reads']} vs brute "
                f"{row[f'k{k}_brute_reads']} node reads "
                f"({row[f'k{k}_ratio']:.1%}), "
                f"{row[f'k{k}_pruned_subtrees']} subtrees pruned"
            )
    largest = max(knn_rows, key=lambda r: r["size"])
    for k in KS:
        ratio = largest[f"k{k}_ratio"]
        if ratio > KNN_READ_GATE:
            failures.append(
                f"best-first kNN read {ratio:.1%} of the brute-force "
                f"nodes at n={largest['size']} k={k}; the gate requires "
                f"<= {KNN_READ_GATE:.0%}"
            )
    for row in count_rows:
        print(
            f"count pushdown n={row['size']}: {row['pushdown_reads']} vs "
            f"{row['full_traversal_reads']} node reads, "
            f"{row['pruned_subtrees']} subtrees short-circuited"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("kNN benchmark gate passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
