#!/usr/bin/env python
"""Vectorized batched filter vs the per-object path → ``BENCH_vector.json``.

The columnar refactor (:mod:`repro.spatial.columnar`) exists to make the
hot filter loop — "which of these N boxes satisfy this BoxQuery?" — a
handful of array comparisons instead of N Python-level predicate calls.
This bench times :meth:`ColumnStore.match_positions` against the
per-object oracle loop on random box populations across a scale ladder
and enforces the CI gate:

    at the largest scale, the vectorized batched filter must run at
    least **3×** faster than the per-object path (best-of-N on both
    sides, so scheduler noise cannot fail the gate spuriously).

Every scale also cross-checks that both paths select the identical row
set — a fast kernel with different answers would be worse than useless.
The gate is only meaningful for the NumPy backend; without NumPy the
``array``-module fallback is measured and reported but not gated (it
exists for portability and bit-identity, not speed).

``REPRO_BENCH_VECTOR_SIZES`` overrides the scale ladder,
``REPRO_BENCH_VECTOR_REPS`` the repetition count.

Usage::

    python benchmarks/bench_vector.py [--out BENCH_vector.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
from time import perf_counter

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.boxes import Box  # noqa: E402
from repro.boxes.bconstraints import BoxQuery  # noqa: E402
from repro.spatial import (  # noqa: E402
    HAVE_NUMPY,
    ColumnStore,
    active_backend,
    forced_backend,
)

SIZES = [
    int(s)
    for s in os.environ.get(
        "REPRO_BENCH_VECTOR_SIZES", "4096,16384,65536"
    ).split(",")
]
REPS = int(os.environ.get("REPRO_BENCH_VECTOR_REPS", "5"))

#: The CI gate: vectorized filter ≥ 3× per-object at the largest scale.
SPEEDUP_GATE = 3.0

SEED = 23
UNIVERSE_SIDE = 1024.0


def _population(n: int):
    """``n`` random boxes (a sprinkle of empties) plus a query that
    admits roughly a quarter of them — representative, not adversarial."""
    rng = random.Random(SEED + n)
    boxes = []
    for _ in range(n):
        if rng.random() < 0.05:
            boxes.append(Box((1.0, 1.0), (1.0, 1.0)))  # degenerate = empty
            continue
        lo = (
            rng.uniform(0, UNIVERSE_SIDE - 40),
            rng.uniform(0, UNIVERSE_SIDE - 40),
        )
        boxes.append(
            Box(
                lo,
                (lo[0] + rng.uniform(1, 32), lo[1] + rng.uniform(1, 32)),
            )
        )
    half = UNIVERSE_SIDE / 2
    query = BoxQuery(
        inside=Box((0.0, 0.0), (half + 64.0, UNIVERSE_SIDE)),
        overlap=(Box((64.0, 64.0), (half, UNIVERSE_SIDE - 64.0)),),
    )
    return boxes, query


def bench_scale(n: int) -> dict:
    boxes, query = _population(n)
    store = ColumnStore(2)
    for i, box in enumerate(boxes):
        store.append(box, i)

    def per_object():
        return [
            i
            for i, box in enumerate(boxes)
            if not box.is_empty() and query.matches(box)
        ]

    scalar_times = []
    for _ in range(REPS):
        start = perf_counter()
        want = per_object()
        scalar_times.append(perf_counter() - start)

    vector_times = []
    for _ in range(REPS):
        start = perf_counter()
        got = store.match_positions(query)
        vector_times.append(perf_counter() - start)

    identical = list(got) == want
    scalar_s, vector_s = min(scalar_times), min(vector_times)
    return {
        "size": n,
        "selected": len(want),
        "per_object_ms": round(scalar_s * 1e3, 3),
        "vectorized_ms": round(vector_s * 1e3, 3),
        "speedup": round(scalar_s / vector_s, 2) if vector_s else float("inf"),
        "identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/out/BENCH_vector.json")
    args = parser.parse_args(argv)

    backend = "numpy" if HAVE_NUMPY else "array"
    with forced_backend(backend):
        assert active_backend() == backend
        rows = [bench_scale(size) for size in SIZES]

    largest = rows[-1]
    result = {
        "python": platform.python_version(),
        "backend": backend,
        "sizes": SIZES,
        "reps": REPS,
        "gate": {
            "threshold": SPEEDUP_GATE,
            "enforced": HAVE_NUMPY,
            "size": largest["size"],
            "speedup": largest["speedup"],
        },
        "rows": rows,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")

    failures = []
    for row in rows:
        print(
            f"filter n={row['size']} ({backend}): vectorized "
            f"{row['vectorized_ms']}ms vs per-object "
            f"{row['per_object_ms']}ms ({row['speedup']}x), "
            f"identical={row['identical']}"
        )
        if not row["identical"]:
            failures.append(
                f"vectorized filter at n={row['size']} selected a "
                "different row set than the per-object path"
            )
    if not HAVE_NUMPY:
        print(
            "numpy not installed: stdlib fallback measured, "
            "speedup gate skipped"
        )
    elif largest["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"vectorized filter only {largest['speedup']}x faster at "
            f"n={largest['size']}; the gate requires ≥ {SPEEDUP_GATE}x"
        )

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("all vector gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
