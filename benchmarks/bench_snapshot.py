#!/usr/bin/env python
"""Snapshot load vs full STR build → ``BENCH_snapshot.json``.

The point of :mod:`repro.spatial.snapshot` is that a resident service
restarts from disk instead of re-running the whole cold start: workload
construction (region disjointing), the STR bulk load, the statistics
scan, and the partitioning sort.  This bench times both paths on the
smugglers workload across a scale ladder and enforces the CI gate:

    at the largest scale, ``Database.open`` must cost **≤ 25%** of the
    full build's wall-clock (best-of-N on both sides, so scheduler
    noise cannot fail the gate spuriously).

Each scale also checks that the loaded database answers the smugglers
query bit-identically to the one just built (a timing bench that loads
the wrong rows fast would be worse than useless).

``REPRO_BENCH_SNAPSHOT_SIZES`` overrides the scale ladder,
``REPRO_BENCH_SNAPSHOT_REPS`` the repetition count.

Usage::

    python benchmarks/bench_snapshot.py [--out BENCH_snapshot.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
from time import perf_counter

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.database import Database, Session  # noqa: E402
from repro.datagen import smugglers_query  # noqa: E402

SIZES = [
    int(s)
    for s in os.environ.get(
        "REPRO_BENCH_SNAPSHOT_SIZES", "256,512,1024"
    ).split(",")
]
REPS = int(os.environ.get("REPRO_BENCH_SNAPSHOT_REPS", "3"))

#: The CI gate: snapshot load ≤ 25% of the full build at the largest scale.
LOAD_GATE = 0.25

#: Partitioning granularity both paths warm (the service's default-ish).
PARTITIONS = 8

STATES_GRID = (6, 6)
SEED = 7


def _full_build(size: int):
    """The cold start a snapshot replaces: generate + pack + warm."""
    query, _world = smugglers_query(
        seed=SEED, n_towns=size, n_roads=size, states_grid=STATES_GRID
    )
    for table in query.tables.values():
        table.statistics()
        table.partitioning(PARTITIONS)
    return query


def _answers(db: Database, system: str):
    result = Session(db=db).run(system)
    return {
        tuple(a[v].oid for v in ("T", "R", "B")) for a in result.answers
    }


def bench_scale(size: int, workdir: str) -> dict:
    build_times = []
    for _ in range(REPS):
        start = perf_counter()
        query = _full_build(size)
        build_times.append(perf_counter() - start)

    db = Database.from_query(query)
    path = os.path.join(workdir, f"snapshot_{size}.json")
    db.save(path, partitions=PARTITIONS)

    load_times = []
    for _ in range(REPS):
        start = perf_counter()
        loaded = Database.open(path)
        load_times.append(perf_counter() - start)

    system = str(query.system)
    identical = _answers(loaded, system) == _answers(db, system)

    build_s, load_s = min(build_times), min(load_times)
    return {
        "size": size,
        "rows": sum(len(t) for t in db.tables.values()),
        "file_bytes": os.path.getsize(path),
        "build_ms": round(build_s * 1e3, 3),
        "load_ms": round(load_s * 1e3, 3),
        "ratio": round(load_s / build_s, 4),
        "answers_identical": identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/out/BENCH_snapshot.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as workdir:
        rows = [bench_scale(size, workdir) for size in SIZES]

    largest = rows[-1]
    result = {
        "python": platform.python_version(),
        "sizes": SIZES,
        "reps": REPS,
        "partitions": PARTITIONS,
        "gate": {
            "threshold": LOAD_GATE,
            "size": largest["size"],
            "ratio": largest["ratio"],
        },
        "rows": rows,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")

    failures = []
    for row in rows:
        print(
            f"snapshot n={row['size']}: load {row['load_ms']}ms vs build "
            f"{row['build_ms']}ms ({row['ratio']:.1%}), "
            f"identical={row['answers_identical']}"
        )
        if not row["answers_identical"]:
            failures.append(
                f"loaded snapshot at n={row['size']} answers differently "
                "from the freshly built database"
            )
    if largest["ratio"] > LOAD_GATE:
        failures.append(
            f"snapshot load took {largest['ratio']:.1%} of the full build "
            f"at n={largest['size']}; the gate requires ≤ {LOAD_GATE:.0%}"
        )

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("all snapshot gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
