"""Partitioned spatial join: PBSM vs the index-nested-loop baseline.

The engine's two box-join algorithms on the one query shape both
support (binary overlap):

* **index-nested-loop** — one R-tree range probe per outer box; its
  "exact tests" are the per-entry box tests the traversals perform
  (``RTreeStats.entry_tests``);
* **PBSM** — co-partition both inputs on a uniform tile grid,
  plane-sweep each tile, dedupe boundary duplicates with the
  reference-point rule; its exact tests are the sweeps' candidate-pair
  tests (``JoinStats.pair_tests``).

Both must return identical pair sets; PBSM must do **≥ 25% fewer exact
tests** at the largest configured scale (the CI gate, enforced here and
re-checked by ``ci_smoke.py``), and the parallel tile fan-out must be
**bit-identical** to the serial run — same pairs, same order.
"""

import os
import random

import pytest

from benchmarks.conftest import report
from repro.boxes import Box
from repro.spatial import Exchange, JoinStats, RTree, pbsm_join

# REPRO_BENCH_PBSM_SIZES overrides the scale ladder (CI smoke runs a
# reduced one); the ≥25% gate applies at the largest configured size.
SIZES = [
    int(s)
    for s in os.environ.get("REPRO_BENCH_PBSM_SIZES", "200,400,800").split(",")
]
TILES = int(os.environ.get("REPRO_BENCH_PBSM_TILES", "64"))
WORKERS = 4
UNIVERSE_SIDE = 100.0

#: The CI gate: PBSM exact tests at the largest scale must be at most
#: this fraction of the index-nested-loop baseline's.
PBSM_TEST_GATE = 0.75


def make_entries(seed: int, n: int):
    """``(box, id)`` pairs: small random rectangles in the universe."""
    rng = random.Random(seed)
    out = []
    for i in range(n):
        lo = (
            rng.uniform(0, UNIVERSE_SIDE - 8),
            rng.uniform(0, UNIVERSE_SIDE - 8),
        )
        out.append(
            (
                Box(
                    lo,
                    (lo[0] + rng.uniform(1, 8), lo[1] + rng.uniform(1, 8)),
                ),
                i,
            )
        )
    return out


def run_inl(left, right):
    """Index-nested-loop join; returns ``(pairs, exact_tests, reads)``."""
    from repro.boxes import BoxQuery

    tree = RTree.bulk_load(right, max_entries=8)
    tree.stats.reset()
    pairs = []
    for box, value in left:
        for _b, other in tree.search(BoxQuery(overlap=(box,))):
            pairs.append((value, other))
    pairs.sort()
    return pairs, tree.stats.entry_tests, tree.stats.node_reads


def run_pbsm(left, right, workers: int = 0, kind: str = "thread"):
    """PBSM join; returns ``(pairs, stats)`` — pairs sorted by input."""
    stats = JoinStats()
    pairs = pbsm_join(
        left,
        right,
        n_tiles=TILES,
        exchange=Exchange(workers=workers, kind=kind),
        stats=stats,
    )
    return pairs, stats


_rows = []


@pytest.mark.parametrize("size", SIZES)
def test_pbsm_matches_inl_with_fewer_tests(benchmark, size):
    left = make_entries(size, size)
    right = make_entries(size + 1, size)
    inl_pairs, inl_tests, inl_reads = run_inl(left, right)
    pbsm_pairs, stats = benchmark(run_pbsm, left, right)
    assert pbsm_pairs == inl_pairs  # identical pair lists (both sorted)
    row = {
        "size": size,
        "pairs": len(pbsm_pairs),
        "inl_tests": inl_tests,
        "pbsm_tests": stats.pair_tests,
        "ratio": round(stats.pair_tests / inl_tests, 4) if inl_tests else 0,
        "tiles": stats.tiles,
        "dedup": stats.dedup_skipped,
    }
    _rows.append(row)
    benchmark.extra_info.update(row)
    if size == max(SIZES):
        assert stats.pair_tests <= PBSM_TEST_GATE * inl_tests, (
            f"PBSM did {stats.pair_tests} exact tests vs INL's "
            f"{inl_tests}; the gate requires ≤ {PBSM_TEST_GATE:.0%}"
        )


@pytest.mark.parametrize("workers", [2, WORKERS])
def test_parallel_bit_identical_to_serial(workers):
    size = max(SIZES)
    left = make_entries(7, size)
    right = make_entries(11, size)
    serial, _ = run_pbsm(left, right, workers=0)
    parallel, _ = run_pbsm(left, right, workers=workers)
    assert parallel == serial  # same pairs, same order


def test_report():
    if _rows:
        report(
            "partitioned join: PBSM vs index-nested-loop",
            _rows,
            [
                "size",
                "pairs",
                "inl_tests",
                "pbsm_tests",
                "ratio",
                "tiles",
                "dedup",
            ],
        )
