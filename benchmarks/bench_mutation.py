#!/usr/bin/env python
"""Incremental-maintenance throughput → ``benchmarks/out/BENCH_mutation.json``.

The LSM-style write delta (:mod:`repro.spatial.delta`) exists so point
mutations stop costing a full STR rebuild: inserts and tombstones stage
in a small memory overlay that every read path merges transparently,
and the packed base is only rebuilt when the delta crosses its repack
threshold.  This bench runs a **sustained interleaved stream** — small
mutation batches (3:1 inserts:deletes) alternating with range / count /
kNN queries — through two implementations of the same logical table:

* **delta** — the shipped write path: O(delta) staging, overlay-merged
  reads, threshold-triggered repacks;
* **rebuild-per-batch** — the pre-delta baseline: apply the batch, then
  STR-rebuild the packed table before serving the next queries (what
  the query service used to do per mutation).

Every batch cross-checks bit-identity: the delta table's answers (range
oid sets, count, kNN distance/oid ranking) must equal the freshly
rebuilt baseline's.  The reported speedup is baseline wall clock over
delta wall clock for the whole stream.

With ``--check-speedup`` (the CI gate) the delta stream must run at
least **3×** faster than rebuild-per-batch at the largest scale.

``REPRO_BENCH_MUTATION_SIZES`` overrides the scale ladder,
``REPRO_BENCH_MUTATION_BATCHES`` the batch count.

Usage::

    python benchmarks/bench_mutation.py [--out ...] [--check-speedup]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
from time import perf_counter

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.algebra import Region  # noqa: E402
from repro.boxes import Box, BoxQuery  # noqa: E402
from repro.spatial import SpatialTable  # noqa: E402

SIZES = [
    int(s)
    for s in os.environ.get(
        "REPRO_BENCH_MUTATION_SIZES", "4000,16000"
    ).split(",")
]
BATCHES = int(os.environ.get("REPRO_BENCH_MUTATION_BATCHES", "120"))
MUTATIONS_PER_BATCH = 4  # 3 inserts : 1 delete
QUERIES_PER_BATCH = 3

#: The CI gate: interleaved delta stream ≥ 3× rebuild-per-batch,
#: largest scale.
SPEEDUP_GATE = 3.0

SEED = 83
UNIVERSE = Box((0.0, 0.0), (1024.0, 1024.0))
SIDE = 4.0


def _random_region(rng: random.Random) -> Region:
    lo = (
        rng.uniform(0, 1024.0 - SIDE),
        rng.uniform(0, 1024.0 - SIDE),
    )
    return Region.from_box(
        Box(lo, (lo[0] + rng.uniform(1, SIDE), lo[1] + rng.uniform(1, SIDE)))
    )


def _build_stream(n: int):
    """Seed rows plus the deterministic mutation/query stream."""
    rng = random.Random(SEED + n)
    rows = [(i, _random_region(rng)) for i in range(n)]
    live = [oid for oid, _r in rows]
    next_oid = n
    batches = []
    for _ in range(BATCHES):
        mutations = []
        for j in range(MUTATIONS_PER_BATCH):
            if j % MUTATIONS_PER_BATCH == MUTATIONS_PER_BATCH - 1 and live:
                victim = live.pop(rng.randrange(len(live)))
                mutations.append(("delete", victim, None))
            else:
                mutations.append(("insert", next_oid, _random_region(rng)))
                live.append(next_oid)
                next_oid += 1
        queries = []
        for _ in range(QUERIES_PER_BATCH):
            lo = (rng.uniform(0, 1000.0), rng.uniform(0, 1000.0))
            queries.append(
                BoxQuery(overlap=(Box(lo, (lo[0] + 24.0, lo[1] + 24.0)),))
            )
        anchor = (rng.uniform(0, 1024.0), rng.uniform(0, 1024.0))
        batches.append((mutations, queries, anchor))
    return rows, batches


def _answers(table, queries, anchor):
    """The batch's read results in a comparable form."""
    out = []
    for q in queries:
        out.append(sorted(repr(o.oid) for o in table.range_query(q)))
        out.append(table.count_range(q))
    out.append(
        [(d, repr(o.oid)) for d, o in table.nearest(anchor, 5)]
    )
    return out


def run_delta(rows, batches):
    """The shipped path: staged writes, overlay reads, auto repack."""
    table = SpatialTable("mut", 2, index="rtree", universe=UNIVERSE)
    table.bulk_insert(rows)
    start = perf_counter()
    results = []
    for mutations, queries, anchor in batches:
        for op, oid, region in mutations:
            if op == "insert":
                table.stage_insert(oid, region)
            else:
                table.delete(oid)
        results.append(_answers(table, queries, anchor))
    elapsed = perf_counter() - start
    return elapsed, results, table


def run_rebuild(rows, batches):
    """The baseline: STR-rebuild the packed table after every batch."""
    live = dict(rows)
    table = SpatialTable("mut", 2, index="rtree", universe=UNIVERSE)
    table.bulk_insert(rows)
    start = perf_counter()
    results = []
    for mutations, queries, anchor in batches:
        for op, oid, region in mutations:
            if op == "insert":
                live[oid] = region
            else:
                del live[oid]
        table = SpatialTable("mut", 2, index="rtree", universe=UNIVERSE)
        table.bulk_insert(list(live.items()))
        results.append(_answers(table, queries, anchor))
    elapsed = perf_counter() - start
    return elapsed, results


def bench_scale(n: int) -> dict:
    rows, batches = _build_stream(n)
    delta_s, delta_results, table = run_delta(rows, batches)
    rebuild_s, rebuild_results = run_rebuild(rows, batches)
    ops = BATCHES * (MUTATIONS_PER_BATCH + QUERIES_PER_BATCH + 1)
    return {
        "size": n,
        "batches": BATCHES,
        "interleaved_ops": ops,
        "delta_ms": round(delta_s * 1e3, 3),
        "rebuild_ms": round(rebuild_s * 1e3, 3),
        "speedup": round(rebuild_s / delta_s, 2) if delta_s else float("inf"),
        "delta_ops_per_s": round(ops / delta_s, 1) if delta_s else None,
        "rebuild_ops_per_s": round(ops / rebuild_s, 1) if rebuild_s else None,
        "identical": delta_results == rebuild_results,
        "repacks": table.repacks,
        "delta_probes": table.delta_probes,
        "pending_at_end": table.delta_pending_ops,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/out/BENCH_mutation.json")
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help="enforce the ≥3x interleaved-throughput gate vs the "
        "rebuild-per-batch baseline (CI)",
    )
    args = parser.parse_args(argv)

    rows = [bench_scale(size) for size in SIZES]
    largest = rows[-1]
    result = {
        "python": platform.python_version(),
        "sizes": SIZES,
        "batches": BATCHES,
        "mutations_per_batch": MUTATIONS_PER_BATCH,
        "queries_per_batch": QUERIES_PER_BATCH,
        "gate": {
            "threshold": SPEEDUP_GATE,
            "enforced": args.check_speedup,
            "size": largest["size"],
            "speedup": largest["speedup"],
        },
        "rows": rows,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")

    failures = []
    for row in rows:
        print(
            f"interleaved n={row['size']} ({row['interleaved_ops']} ops): "
            f"delta={row['delta_ms']}ms ({row['repacks']} repacks, "
            f"{row['delta_probes']} delta probes) "
            f"rebuild-per-batch={row['rebuild_ms']}ms "
            f"speedup={row['speedup']}x identical={row['identical']}"
        )
        if not row["identical"]:
            failures.append(
                f"delta stream at n={row['size']} answered differently "
                "than the rebuild-per-batch baseline"
            )
        if not row["repacks"]:
            failures.append(
                f"delta stream at n={row['size']} never repacked; the "
                "threshold fold went untested"
            )
        if not row["delta_probes"]:
            failures.append(
                f"delta stream at n={row['size']} never merged the "
                "overlay; the delta read path went untested"
            )
    if args.check_speedup and largest["speedup"] < SPEEDUP_GATE:
        failures.append(
            f"delta stream only {largest['speedup']}x faster at "
            f"n={largest['size']}; the gate requires ≥ {SPEEDUP_GATE}x"
        )
    if not args.check_speedup:
        print("speedup gate not enforced (pass --check-speedup in CI)")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("all mutation gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
