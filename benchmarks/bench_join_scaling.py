"""E5 — the headline claim: optimized vs naive multi-way spatial join.

Scales the smugglers database and compares the three executors.  The
paper's qualitative prediction (its entire motivation):

* naive cost grows with the PRODUCT of table sizes;
* the optimized plans grow roughly with the sum of candidates actually
  admitted by the level-wise constraints;
* boxplan ≤ exact in region ops (the box filter absorbs most pruning).

The assertions pin those *shapes* (who wins, and that the gap widens).
"""

import pytest

from benchmarks.conftest import report
from repro.datagen import smugglers_query
from repro.engine import compile_query, execute

SIZES = [8, 16, 24]

_results = {}


def _run(size: int, mode: str):
    query, _world = smugglers_query(
        seed=size, n_towns=size, n_roads=size, states_grid=(3, 3)
    )
    plan = compile_query(query)
    answers, stats = execute(plan, mode)
    return answers, stats


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["naive", "exact", "boxplan"])
def test_join_scaling(benchmark, size, mode):
    if mode == "naive" and size > 16:
        pytest.skip("naive join beyond 16x16x9 takes minutes; shape "
                    "is already visible at smaller sizes")
    answers, stats = benchmark(_run, size, mode)
    _results[(size, mode)] = stats
    benchmark.extra_info.update(
        {"size": size, **stats.as_dict()}
    )
    report(
        f"E5: size={size} mode={mode}",
        [stats.as_dict()],
        ["mode", "tuples", "partials", "region_ops", "candidates"],
    )


def test_shape_assertions(benchmark):
    """Who wins, by what shape (run after the parametrized benches)."""
    if not _results:
        pytest.skip("scaling benches did not run")
    for size in SIZES:
        exact = _results.get((size, "exact"))
        box = _results.get((size, "boxplan"))
        naive = _results.get((size, "naive"))
        if exact and box:
            assert box.region_ops <= exact.region_ops, size
            assert box.total_candidates <= exact.total_candidates, size
        if naive and box:
            assert box.region_ops < naive.region_ops, size
            assert box.partial_tuples < naive.partial_tuples, size
    rows = [
        {
            "size": size,
            "mode": mode,
            "region_ops": stats.region_ops,
            "partials": stats.partial_tuples,
            "tuples": stats.tuples_emitted,
        }
        for (size, mode), stats in sorted(
            _results.items(), key=lambda kv: (kv[0][0], kv[0][1])
        )
    ]
    report("E5: summary", rows, ["size", "mode", "region_ops", "partials", "tuples"])
