"""E5 — the headline claim: optimized vs naive multi-way spatial join.

Scales the smugglers database and compares the three executors.  The
paper's qualitative prediction (its entire motivation):

* naive cost grows with the PRODUCT of table sizes;
* the optimized plans grow roughly with the sum of candidates actually
  admitted by the level-wise constraints;
* boxplan ≤ exact in region ops (the box filter absorbs most pruning).

The assertions pin those *shapes* (who wins, and that the gap widens).

A second section measures the **index build path** at the bench's
largest configured scale (``STR_SIZE``): STR bulk-loaded r-trees versus
the one-at-a-time insertion baseline, node reads aggregated over the
benchmark query set (several map seeds).  STR packing must cut node
reads by ≥ 20% — the bulk-loading subsystem's headline number, exported
to ``BENCH_ci.json`` by the CI smoke job.
"""

import os

import pytest

from benchmarks.conftest import report
from repro.datagen import smugglers_query
from repro.engine import compile_query, execute

# REPRO_BENCH_SIZES overrides the scale ladder (the CI smoke job runs a
# reduced one); naive joins are skipped past _NAIVE_LIMIT regardless.
SIZES = [
    int(s)
    for s in os.environ.get("REPRO_BENCH_SIZES", "8,16,24").split(",")
]
_NAIVE_LIMIT = 16

# The STR-vs-insertion comparison: the bench's largest configured scale.
# Deep trees (small node capacity) and a finer state grid make index
# quality the dominant cost; the map seeds are the benchmark query set.
STR_SIZE = int(os.environ.get("REPRO_BENCH_STR_SIZE", "96"))
STR_GRID = (4, 4)
STR_CAPACITY = 4
STR_SEEDS = tuple(range(8))


def _str_node_reads(seed: int, pack: bool) -> int:
    query, _world = smugglers_query(
        seed=seed,
        n_towns=STR_SIZE,
        n_roads=STR_SIZE,
        states_grid=STR_GRID,
        node_capacity=STR_CAPACITY,
        pack=pack,
    )
    plan = compile_query(query)
    _answers, stats = execute(plan, "boxplan")
    return stats.node_reads

_results = {}


def _run(size: int, mode: str):
    query, _world = smugglers_query(
        seed=size, n_towns=size, n_roads=size, states_grid=(3, 3)
    )
    plan = compile_query(query)
    answers, stats = execute(plan, mode)
    return answers, stats


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("mode", ["naive", "exact", "boxplan"])
def test_join_scaling(benchmark, size, mode):
    if mode == "naive" and size > _NAIVE_LIMIT:
        pytest.skip("naive join beyond 16x16x9 takes minutes; shape "
                    "is already visible at smaller sizes")
    answers, stats = benchmark(_run, size, mode)
    _results[(size, mode)] = stats
    benchmark.extra_info.update(
        {"size": size, **stats.as_dict()}
    )
    report(
        f"E5: size={size} mode={mode}",
        [stats.as_dict()],
        ["mode", "tuples", "partials", "region_ops", "candidates"],
    )


def test_str_packing_reduces_node_reads(benchmark):
    """STR bulk loading vs insertion build at the largest scale."""

    def run():
        insertion = sum(_str_node_reads(s, pack=False) for s in STR_SEEDS)
        packed = sum(_str_node_reads(s, pack=True) for s in STR_SEEDS)
        return insertion, packed

    insertion, packed = benchmark.pedantic(run, rounds=1, iterations=1)
    reduction = 1.0 - packed / insertion
    benchmark.extra_info.update(
        {
            "size": STR_SIZE,
            "seeds": len(STR_SEEDS),
            "node_reads_insertion": insertion,
            "node_reads_str": packed,
            "reduction": round(reduction, 4),
        }
    )
    report(
        f"E5: STR vs insertion @ size {STR_SIZE}",
        [
            {
                "build": "insertion",
                "node_reads": insertion,
            },
            {
                "build": "str-packed",
                "node_reads": packed,
            },
            {
                "build": "reduction",
                "node_reads": f"{reduction:.1%}",
            },
        ],
        ["build", "node_reads"],
    )
    assert packed < insertion
    if STR_SIZE >= 96:  # the acceptance bar holds at full scale
        assert reduction >= 0.20, f"STR reduction {reduction:.1%} < 20%"


def test_shape_assertions(benchmark):
    """Who wins, by what shape (run after the parametrized benches)."""
    if not _results:
        pytest.skip("scaling benches did not run")
    for size in SIZES:
        exact = _results.get((size, "exact"))
        box = _results.get((size, "boxplan"))
        naive = _results.get((size, "naive"))
        if exact and box:
            assert box.region_ops <= exact.region_ops, size
            assert box.total_candidates <= exact.total_candidates, size
        if naive and box:
            assert box.region_ops < naive.region_ops, size
            assert box.partial_tuples < naive.partial_tuples, size
    rows = [
        {
            "size": size,
            "mode": mode,
            "region_ops": stats.region_ops,
            "partials": stats.partial_tuples,
            "tuples": stats.tuples_emitted,
        }
        for (size, mode), stats in sorted(
            _results.items(), key=lambda kv: (kv[0][0], kv[0][1])
        )
    ]
    report("E5: summary", rows, ["size", "mode", "region_ops", "partials", "tuples"])
