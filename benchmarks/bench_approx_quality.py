"""E10 — approximation tightness: Algorithm 2 vs the naive transform.

Theorems 15/17 say the BCF-based L/U are the BEST bounding-box
approximations.  This bench measures what "best" buys operationally:
candidate-set inflation when the naive syntactic transform (∧→⊓, ∨→⊔,
¬→TOP) is used instead of U_f for the same query, on formulas where they
differ (the paper's hidden-atom/consensus cases).
"""

import random


from benchmarks.conftest import report
from repro.algebra import Region
from repro.boolean import Var
from repro.boxes import (
    Box,
    BoxQuery,
    evaluate_boxfunc,
    naive_transform,
    upper_approximation,
)
from repro.spatial import SpatialTable

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))
N = 600

#: The upper bound t of a range constraint x ⊆ t, written in FACTORED
#: form: t = D ∧ (C ∨ E).  The paper's own example of representation
#: dependence — the naive transform gives ⌈D⌉ ⊓ (⌈C⌉ ⊔ ⌈E⌉), while
#: Algorithm 2 (working on the BCF, an SOP) gives the strictly tighter
#: (⌈D⌉⊓⌈C⌉) ⊔ (⌈D⌉⊓⌈E⌉).  With C and E far apart and D spanning the
#: gap, the naive box admits everything inside ⌈D⌉ while the best box is
#: empty.
C, D, E = (Var(v) for v in "CDE")
FORMULA = D & (C | E)


def _table():
    rng = random.Random(3)
    t = SpatialTable("objs", 2, universe=UNIVERSE)
    for i in range(N):
        lo = (rng.uniform(0, 90), rng.uniform(0, 90))
        t.insert(
            i,
            Region.from_box(
                Box(lo, (lo[0] + rng.uniform(1, 10), lo[1] + rng.uniform(1, 10)))
            ),
        )
    return t


TABLE = _table()

ENV = {
    "C": Box((0.0, 0.0), (10.0, 10.0)),  # low corner
    "E": Box((90.0, 90.0), (100.0, 100.0)),  # high corner
    "D": Box((30.0, 30.0), (70.0, 70.0)),  # spans the gap, misses both
}


def _candidates(upper_box: Box) -> int:
    q = BoxQuery(inside=upper_box)
    return len(TABLE.range_query(q))


def test_best_upper_candidates(benchmark):
    u = upper_approximation(FORMULA)
    box = evaluate_boxfunc(u, ENV, UNIVERSE)
    count = benchmark(_candidates, box)
    benchmark.extra_info["candidates"] = count


def test_naive_upper_candidates(benchmark):
    n = naive_transform(FORMULA)
    box = evaluate_boxfunc(n, ENV, UNIVERSE)
    count = benchmark(_candidates, box)
    benchmark.extra_info["candidates"] = count


def test_inflation_report(benchmark):
    u_box = evaluate_boxfunc(upper_approximation(FORMULA), ENV, UNIVERSE)
    n_box = evaluate_boxfunc(naive_transform(FORMULA), ENV, UNIVERSE)
    best = _candidates(u_box)
    naive = _candidates(n_box)
    report(
        "E10: candidate inflation, x ⊆ t with t = D ∧ (C ∨ E) factored",
        [
            {"transform": "Algorithm 2 (BCF)", "upper_box": repr(u_box),
             "candidates": best},
            {"transform": "naive syntactic", "upper_box": repr(n_box),
             "candidates": naive},
        ],
        ["transform", "upper_box", "candidates"],
    )
    assert u_box.le(n_box)
    assert best <= naive
    # On this instance the gap must be strict: the naive box is the
    # whole universe while BCF finds ⌈D⌉.
    assert best < naive
