#!/usr/bin/env python
"""CI benchmark smoke: machine-independent counters → ``BENCH_ci.json``.

Runs reduced-scale versions of the two headline benchmarks
(``bench_join_scaling`` and ``bench_order_ablation``) plus the
full-scale STR-vs-insertion comparison, and writes the paper's cost
counters (partial tuples, region ops, index node reads) to a JSON
artifact that CI uploads on every run — the perf trajectory the ROADMAP
asks for.

Six acceptance gates are enforced (non-zero exit on failure):

1. STR-packed r-trees cut aggregate node reads by ≥ 20% versus the
   insertion-built baseline at the join-scaling bench's largest
   configured scale;
2. the histogram (statistics-catalog) planner never picks an order with
   more measured partial tuples than the greedy heuristic on the
   benchmark query set;
3. streaming: ``execute_iter(..., limit=1)`` yields the first answer in
   under 25% of the full-materialization time at the smoke scale (the
   operator tree pipelines instead of materializing levels);
4. probe cache: re-running a query through a shared ``ProbeCache`` hits
   on ≥ 90% of its index probes and costs zero index node reads;
5. partitioned join: the PBSM spatial join performs ≥ 25% fewer exact
   (candidate box) tests than the index-nested-loop baseline at the
   partitioned-join bench's largest scale, with identical pair sets;
6. parallelism: the PBSM tile fan-out over a worker pool returns a
   result list bit-identical to the serial run.

The partitioned-join rows are additionally written to their own
artifact (``BENCH_partitioned.json``, uploaded by CI alongside
``BENCH_ci.json``).

Usage::

    python benchmarks/ci_smoke.py [--out BENCH_ci.json]
                                  [--partitioned-out BENCH_partitioned.json]
                                  [--full]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.bench_join_scaling import (  # noqa: E402
    STR_CAPACITY,
    STR_GRID,
    STR_SEEDS,
    STR_SIZE,
    _str_node_reads,
)
from benchmarks.bench_partitioned_join import (  # noqa: E402
    PBSM_TEST_GATE,
    TILES,
    make_entries,
    run_inl,
    run_pbsm,
)
from repro.datagen import containment_chain_query, smugglers_query  # noqa: E402
from repro.engine import (  # noqa: E402
    ProbeCache,
    SpatialQuery,
    build_physical_plan,
    compile_query,
    enumerate_orders,
    execute,
    plan_order,
)


def _run_join(size: int, mode: str) -> dict:
    query, _world = smugglers_query(
        seed=size, n_towns=size, n_roads=size, states_grid=(3, 3)
    )
    plan = compile_query(query)
    _answers, stats = execute(plan, mode)
    counters = stats.to_dict()  # the JSON-round-trippable form
    counters.pop("steps", None)  # keep artifact rows flat
    return {"size": size, **counters}


def join_scaling_section(full: bool) -> list:
    sizes = [8, 16, 24] if full else [8, 16]
    rows = []
    for size in sizes:
        for mode in ("naive", "exact", "boxplan"):
            if mode == "naive" and size > 8:
                continue  # minutes of cross-product work; shape visible at 8
            rows.append(_run_join(size, mode))
    return rows


def str_packing_section() -> dict:
    insertion = sum(_str_node_reads(s, pack=False) for s in STR_SEEDS)
    packed = sum(_str_node_reads(s, pack=True) for s in STR_SEEDS)
    reduction = 1.0 - packed / insertion if insertion else 0.0
    return {
        "size": STR_SIZE,
        "states_grid": list(STR_GRID),
        "node_capacity": STR_CAPACITY,
        "seeds": len(STR_SEEDS),
        "node_reads_insertion": insertion,
        "node_reads_str": packed,
        "reduction": round(reduction, 4),
    }


def _measured_partials(query: SpatialQuery, order) -> int:
    plan = compile_query(query, order=order)
    _answers, stats = execute(plan, "boxplan")
    return stats.partial_tuples


def order_planning_section(full: bool) -> list:
    queries = []
    n = 18 if full else 12
    for seed in (21, 3, 7):
        q, _world = smugglers_query(
            seed=seed, n_towns=n, n_roads=n, states_grid=(3, 3)
        )
        queries.append(
            (
                f"smugglers/seed={seed}",
                SpatialQuery(
                    system=q.system, tables=q.tables, bindings=q.bindings
                ),
            )
        )
    for seed in (0, 4):
        queries.append(
            (
                f"chain/seed={seed}",
                containment_chain_query(
                    n_per_table=40 if full else 25, depth=3, seed=seed
                ),
            )
        )
    rows = []
    for label, query in queries:
        greedy = plan_order(query, "greedy")
        hist = plan_order(query, "histogram")
        measured = {
            order: _measured_partials(query, order)
            for order in enumerate_orders(query)
        }
        rows.append(
            {
                "query": label,
                "greedy_order": list(greedy),
                "greedy_partials": measured[greedy],
                "histogram_order": list(hist),
                "histogram_partials": measured[hist],
                "best_partials": min(measured.values()),
                "worst_partials": max(measured.values()),
            }
        )
    return rows


def streaming_section(full: bool) -> dict:
    """Time-to-first-answer vs full materialization (best of 5 each).

    The smoke scale is chosen so the full run takes tens of
    milliseconds — large enough that the <25% gate has headroom over
    timer noise, small enough for CI.
    """
    from time import perf_counter

    n = 60 if full else 40
    query, _world = smugglers_query(
        seed=13, n_towns=n, n_roads=n, states_grid=(3, 3)
    )
    plan = compile_query(query)
    pplan = build_physical_plan(plan, "boxplan", estimate=False)

    def time_first() -> float:
        start = perf_counter()
        got = next(iter(pplan.execute_iter(limit=1)), None)
        assert got is not None, "streaming smoke workload has no answers"
        return perf_counter() - start

    def time_total() -> float:
        start = perf_counter()
        list(pplan.execute_iter())
        return perf_counter() - start

    first = min(time_first() for _ in range(5))
    total = min(time_total() for _ in range(5))
    answers = len(list(pplan.execute_iter()))
    return {
        "size": n,
        "answers": answers,
        "first_answer_ms": round(first * 1e3, 3),
        "all_answers_ms": round(total * 1e3, 3),
        "ratio": round(first / total, 4) if total else 0.0,
    }


def probe_cache_section(full: bool) -> dict:
    """The repeated-query scenario: identical plan executed twice
    through one shared cache; the warm run must be all hits."""
    n = 30 if full else 20
    query, _world = smugglers_query(
        seed=21, n_towns=n, n_roads=n, states_grid=(3, 3)
    )
    plan = compile_query(query)
    cache = ProbeCache(maxsize=4096)
    answers_cold, cold = execute(plan, "boxplan", cache=cache)
    answers_warm, warm = execute(plan, "boxplan", cache=cache)
    assert len(answers_warm) == len(answers_cold)
    return {
        "size": n,
        "answers": len(answers_warm),
        "cold_node_reads": cold.node_reads,
        "warm_node_reads": warm.node_reads,
        "cold_hit_rate": round(cold.cache_hit_rate, 4),
        "warm_hit_rate": round(warm.cache_hit_rate, 4),
        "cache_entries": len(cache),
    }


def partitioned_join_section(full: bool) -> dict:
    """PBSM vs index-nested-loop, plus the parallel-determinism check.

    Mirrors ``bench_partitioned_join.py`` at smoke scale; the exact-test
    gate applies at the largest size and the parallel run must be
    bit-identical to the serial one.
    """
    sizes = [200, 400, 800] if full else [150, 300]
    rows = []
    for size in sizes:
        left = make_entries(size, size)
        right = make_entries(size + 1, size)
        inl_pairs, inl_tests, inl_reads = run_inl(left, right)
        serial_pairs, stats = run_pbsm(left, right, workers=0)
        parallel_pairs, _ = run_pbsm(left, right, workers=4)
        rows.append(
            {
                "size": size,
                "tiles": TILES,
                "pairs": len(serial_pairs),
                "pairs_match_inl": serial_pairs == inl_pairs,
                "parallel_identical": parallel_pairs == serial_pairs,
                "inl_exact_tests": inl_tests,
                "inl_node_reads": inl_reads,
                "pbsm_exact_tests": stats.pair_tests,
                "pbsm_dedup_skipped": stats.dedup_skipped,
                "test_ratio": round(stats.pair_tests / inl_tests, 4)
                if inl_tests
                else 0.0,
            }
        )
    return {"gate": PBSM_TEST_GATE, "rows": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/out/BENCH_ci.json")
    parser.add_argument(
        "--partitioned-out",
        default="benchmarks/out/BENCH_partitioned.json",
        help="separate artifact for the partitioned-join rows",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-scale run (CI uses the reduced default)",
    )
    args = parser.parse_args(argv)

    partitioned = partitioned_join_section(args.full)
    result = {
        "python": platform.python_version(),
        "scale": "full" if args.full else "reduced",
        "join_scaling": join_scaling_section(args.full),
        "str_packing": str_packing_section(),
        "order_planning": order_planning_section(args.full),
        "streaming": streaming_section(args.full),
        "probe_cache": probe_cache_section(args.full),
        "partitioned_join": partitioned,
    }
    for target in (args.out, args.partitioned_out):
        os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")
    with open(args.partitioned_out, "w") as handle:
        json.dump(
            {
                "python": platform.python_version(),
                "scale": result["scale"],
                **partitioned,
            },
            handle,
            indent=2,
        )
    print(f"wrote {args.partitioned_out}")

    failures = []
    str_red = result["str_packing"]["reduction"]
    print(
        f"STR packing: {result['str_packing']['node_reads_str']} vs "
        f"{result['str_packing']['node_reads_insertion']} node reads "
        f"({str_red:.1%} reduction)"
    )
    if str_red < 0.20:
        failures.append(
            f"STR node-read reduction {str_red:.1%} is below the 20% bar"
        )
    for row in result["order_planning"]:
        print(
            f"planner {row['query']}: greedy={row['greedy_partials']} "
            f"histogram={row['histogram_partials']} "
            f"(best={row['best_partials']}, worst={row['worst_partials']})"
        )
        if row["histogram_partials"] > row["greedy_partials"]:
            failures.append(
                f"histogram planner worse than greedy on {row['query']}"
            )
    stream = result["streaming"]
    print(
        f"streaming: first answer {stream['first_answer_ms']}ms vs "
        f"{stream['all_answers_ms']}ms for all {stream['answers']} "
        f"({stream['ratio']:.1%} of full materialization)"
    )
    if stream["ratio"] >= 0.25:
        failures.append(
            f"first answer took {stream['ratio']:.1%} of the full "
            "materialization time; the streaming gate requires < 25%"
        )
    pc = result["probe_cache"]
    print(
        f"probe cache: warm run hit rate {pc['warm_hit_rate']:.1%}, "
        f"node reads {pc['cold_node_reads']} -> {pc['warm_node_reads']}"
    )
    if pc["warm_hit_rate"] < 0.90:
        failures.append(
            f"warm probe-cache hit rate {pc['warm_hit_rate']:.1%} is "
            "below the 90% bar"
        )
    if pc["warm_node_reads"] >= max(1, pc["cold_node_reads"]):
        failures.append(
            "probe cache did not reduce node reads on the repeated query"
        )
    pj_rows = partitioned["rows"]
    for row in pj_rows:
        print(
            f"partitioned join n={row['size']}: PBSM "
            f"{row['pbsm_exact_tests']} vs INL {row['inl_exact_tests']} "
            f"exact tests ({row['test_ratio']:.1%}), "
            f"parallel identical={row['parallel_identical']}"
        )
        if not row["pairs_match_inl"]:
            failures.append(
                f"PBSM pair set differs from index-nested-loop at "
                f"n={row['size']}"
            )
        if not row["parallel_identical"]:
            failures.append(
                f"parallel PBSM result not bit-identical to serial at "
                f"n={row['size']}"
            )
    largest = max(pj_rows, key=lambda r: r["size"])
    if largest["pbsm_exact_tests"] > PBSM_TEST_GATE * largest["inl_exact_tests"]:
        failures.append(
            f"PBSM exact tests {largest['pbsm_exact_tests']} exceed "
            f"{PBSM_TEST_GATE:.0%} of INL's {largest['inl_exact_tests']} "
            f"at the largest bench scale (n={largest['size']})"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("all benchmark gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
