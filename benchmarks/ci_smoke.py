#!/usr/bin/env python
"""CI benchmark smoke: machine-independent counters → ``BENCH_ci.json``.

Runs reduced-scale versions of the two headline benchmarks
(``bench_join_scaling`` and ``bench_order_ablation``) plus the
full-scale STR-vs-insertion comparison, and writes the paper's cost
counters (partial tuples, region ops, index node reads) to a JSON
artifact that CI uploads on every run — the perf trajectory the ROADMAP
asks for.

Two acceptance gates are enforced (non-zero exit on failure):

1. STR-packed r-trees cut aggregate node reads by ≥ 20% versus the
   insertion-built baseline at the join-scaling bench's largest
   configured scale;
2. the histogram (statistics-catalog) planner never picks an order with
   more measured partial tuples than the greedy heuristic on the
   benchmark query set.

Usage::

    python benchmarks/ci_smoke.py [--out BENCH_ci.json] [--full]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from benchmarks.bench_join_scaling import (  # noqa: E402
    STR_CAPACITY,
    STR_GRID,
    STR_SEEDS,
    STR_SIZE,
    _str_node_reads,
)
from repro.datagen import containment_chain_query, smugglers_query  # noqa: E402
from repro.engine import (  # noqa: E402
    SpatialQuery,
    compile_query,
    enumerate_orders,
    execute,
    plan_order,
)


def _run_join(size: int, mode: str) -> dict:
    query, _world = smugglers_query(
        seed=size, n_towns=size, n_roads=size, states_grid=(3, 3)
    )
    plan = compile_query(query)
    _answers, stats = execute(plan, mode)
    counters = stats.as_dict()
    counters.pop("per_step", None)
    return {"size": size, **counters}


def join_scaling_section(full: bool) -> list:
    sizes = [8, 16, 24] if full else [8, 16]
    rows = []
    for size in sizes:
        for mode in ("naive", "exact", "boxplan"):
            if mode == "naive" and size > 8:
                continue  # minutes of cross-product work; shape visible at 8
            rows.append(_run_join(size, mode))
    return rows


def str_packing_section() -> dict:
    insertion = sum(_str_node_reads(s, pack=False) for s in STR_SEEDS)
    packed = sum(_str_node_reads(s, pack=True) for s in STR_SEEDS)
    reduction = 1.0 - packed / insertion if insertion else 0.0
    return {
        "size": STR_SIZE,
        "states_grid": list(STR_GRID),
        "node_capacity": STR_CAPACITY,
        "seeds": len(STR_SEEDS),
        "node_reads_insertion": insertion,
        "node_reads_str": packed,
        "reduction": round(reduction, 4),
    }


def _measured_partials(query: SpatialQuery, order) -> int:
    plan = compile_query(query, order=order)
    _answers, stats = execute(plan, "boxplan")
    return stats.partial_tuples


def order_planning_section(full: bool) -> list:
    queries = []
    n = 18 if full else 12
    for seed in (21, 3, 7):
        q, _world = smugglers_query(
            seed=seed, n_towns=n, n_roads=n, states_grid=(3, 3)
        )
        queries.append(
            (
                f"smugglers/seed={seed}",
                SpatialQuery(
                    system=q.system, tables=q.tables, bindings=q.bindings
                ),
            )
        )
    for seed in (0, 4):
        queries.append(
            (
                f"chain/seed={seed}",
                containment_chain_query(
                    n_per_table=40 if full else 25, depth=3, seed=seed
                ),
            )
        )
    rows = []
    for label, query in queries:
        greedy = plan_order(query, "greedy")
        hist = plan_order(query, "histogram")
        measured = {
            order: _measured_partials(query, order)
            for order in enumerate_orders(query)
        }
        rows.append(
            {
                "query": label,
                "greedy_order": list(greedy),
                "greedy_partials": measured[greedy],
                "histogram_order": list(hist),
                "histogram_partials": measured[hist],
                "best_partials": min(measured.values()),
                "worst_partials": max(measured.values()),
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_ci.json")
    parser.add_argument(
        "--full",
        action="store_true",
        help="full-scale run (CI uses the reduced default)",
    )
    args = parser.parse_args(argv)

    result = {
        "python": platform.python_version(),
        "scale": "full" if args.full else "reduced",
        "join_scaling": join_scaling_section(args.full),
        "str_packing": str_packing_section(),
        "order_planning": order_planning_section(args.full),
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")

    failures = []
    str_red = result["str_packing"]["reduction"]
    print(
        f"STR packing: {result['str_packing']['node_reads_str']} vs "
        f"{result['str_packing']['node_reads_insertion']} node reads "
        f"({str_red:.1%} reduction)"
    )
    if str_red < 0.20:
        failures.append(
            f"STR node-read reduction {str_red:.1%} is below the 20% bar"
        )
    for row in result["order_planning"]:
        print(
            f"planner {row['query']}: greedy={row['greedy_partials']} "
            f"histogram={row['histogram_partials']} "
            f"(best={row['best_partials']}, worst={row['worst_partials']})"
        )
        if row["histogram_partials"] > row["greedy_partials"]:
            failures.append(
                f"histogram planner worse than greedy on {row['query']}"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("all benchmark gates passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
