"""E1 — Figure 1 / Section 2: the smugglers query end to end.

Regenerates the paper's worked example: the triangular solved form and
bounding-box system must match the displayed derivation, and the
compiled plan must return exactly the tuples the naive evaluation finds.
The benchmark times the optimized execution; the report compares the
three modes' machine-independent costs.
"""

import pytest

from benchmarks.conftest import report
from repro.boolean import FALSE, TRUE, Var, equivalent, to_str
from repro.boxes import BoxVar, bjoin
from repro.constraints import (
    SMUGGLERS_ORDER,
    smugglers_system,
    triangular_form,
)
from repro.datagen import smugglers_query
from repro.engine import answers_as_oid_tuples, compile_query, execute


def test_triangular_form_matches_paper(benchmark):
    """Algorithm 1 output == the paper's §2 triangle (and is fast)."""
    tri = benchmark(triangular_form, smugglers_system(), SMUGGLERS_ORDER)
    A, C, R, T = (Var(v) for v in "ACRT")
    ct = tri.constraint_for("T")
    assert ct.lower == FALSE and ct.upper == TRUE
    assert [("~C", "0")] == [
        (to_str(r.p), to_str(r.q)) for r in ct.disequations
    ]
    cr = tri.constraint_for("R")
    assert equivalent(cr.upper, C | T)
    cb = tri.constraint_for("B")
    assert equivalent(cb.lower, R & ~A & ~T)
    assert equivalent(cb.upper, C)
    report(
        "E1: triangular solved form (paper §2)",
        [
            {"level": c.variable, "constraint": c.render().replace("\n", " ;  ")}
            for c in tri.constraints
        ],
        ["level", "constraint"],
    )


def test_box_system_matches_paper(benchmark):
    """The §2 bounding-box system, regenerated."""
    from repro.boxes import TOP, compile_solved_constraint

    tri = triangular_form(smugglers_system(), SMUGGLERS_ORDER)
    templates = {
        c.variable: compile_solved_constraint(c) for c in tri.constraints
    }
    assert templates["R"].upper == bjoin(BoxVar("C"), BoxVar("T"))
    assert templates["B"].upper == BoxVar("C")
    assert templates["T"].upper == TOP
    report(
        "E1: bounding-box plan (paper §2)",
        [
            {"step": v, "template": t.render().replace("\n", " ;  ")}
            for v, t in templates.items()
        ],
        ["step", "template"],
    )


@pytest.mark.parametrize("mode", ["naive", "exact", "boxplan"])
def test_execute_modes(benchmark, mode):
    """Time each mode on a mid-size map; all must agree on the answers."""
    query, world = smugglers_query(
        seed=11, n_towns=20, n_roads=20, states_grid=(3, 3)
    )
    plan = compile_query(query)
    answers, stats = benchmark(execute, plan, mode)
    expected, _ = execute(plan, "naive")
    assert answers_as_oid_tuples(answers, ["T", "R", "B"]) == (
        answers_as_oid_tuples(expected, ["T", "R", "B"])
    )
    benchmark.extra_info.update(stats.as_dict())
    report(
        f"E1: execution [{mode}]",
        [stats.as_dict()],
        ["mode", "tuples", "partials", "region_ops", "candidates"],
    )
