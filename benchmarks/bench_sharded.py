#!/usr/bin/env python
"""Sharded scale-out join scaling → ``benchmarks/out/BENCH_sharded.json``.

The sharded execution layer (:mod:`repro.spatial.shard`) exists to scale
the paper's box-level joins across workers without changing a single
answer: STR shards with their own R-trees, an MBR semi-join coordinator
that only ships probes to shards that can possibly match, a persistent
process pool, and shard coordinate columns published once over
``multiprocessing.shared_memory`` instead of re-pickled per task.

This bench measures the 1/2/4/8-worker scaling curve of the sharded
join on a persistent process pool and enforces, at every point:

* **bit-identity** — the sharded parallel join returns exactly the
  serial coordinator's pairs, with identical deterministic counters
  (semi-join tests, pair tests, dedup skips);
* **spill equivalence** — the bounded-memory out-of-core path
  (``spill=N`` probe-bucket spilling to disk tiles) returns exactly the
  in-memory pairs while actually spilling;
* **engine equivalence** — full query plans built with ``shards=S``
  emit the same answer streams as unsharded serial plans.

With ``--check-speedup`` (the CI gate; off by default because a
single-core dev box cannot scale) the 4-worker join must additionally
run at least **1.5×** faster than the 1-worker join at the largest
scale (best-of-N on both sides).

``REPRO_BENCH_SHARDED_SIZES`` overrides the scale ladder,
``REPRO_BENCH_SHARDED_REPS`` the repetition count,
``REPRO_BENCH_SHARDED_SHARDS`` the shard count.

Usage::

    python benchmarks/bench_sharded.py [--out ...] [--check-speedup]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
from time import perf_counter

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (_REPO, os.path.join(_REPO, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.algebra import Region  # noqa: E402
from repro.boxes import Box  # noqa: E402
from repro.datagen import smugglers_query  # noqa: E402
from repro.engine import (  # noqa: E402
    answers_as_oid_tuples,
    build_physical_plan,
    compile_query,
)
from repro.spatial import SpatialTable  # noqa: E402
from repro.spatial.partition import Exchange, WorkerPool  # noqa: E402
from repro.spatial.shard import ShardJoinStats  # noqa: E402

SIZES = [
    int(s)
    for s in os.environ.get(
        "REPRO_BENCH_SHARDED_SIZES", "20000,40000"
    ).split(",")
]
REPS = int(os.environ.get("REPRO_BENCH_SHARDED_REPS", "3"))
N_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDED_SHARDS", "8"))
WORKERS = (1, 2, 4, 8)

#: The CI gate: 4-worker join ≥ 1.5× the 1-worker join, largest scale.
SPEEDUP_GATE = 1.5
def spill_cap(n: int) -> int:
    """Spill smoke: resident probe entries allowed before spilling —
    an eighth of the probe count, so the out-of-core path must engage."""
    return max(256, n // 8)

SEED = 47
UNIVERSE_SIDE = 1024.0


def _table_and_probes(n: int):
    """``n`` random rows plus ``n`` probe boxes over the same universe."""
    rng = random.Random(SEED + n)
    universe = Box((0.0, 0.0), (UNIVERSE_SIDE, UNIVERSE_SIDE))
    table = SpatialTable("sharded_bench", 2, index="rtree", universe=universe)
    side = 4.0
    rows = []
    for i in range(n):
        lo = (
            rng.uniform(0, UNIVERSE_SIDE - side),
            rng.uniform(0, UNIVERSE_SIDE - side),
        )
        rows.append(
            (i, Box(lo, (lo[0] + rng.uniform(1, side), lo[1] + rng.uniform(1, side))))
        )
    table.bulk_insert([(oid, Region.from_boxes([box])) for oid, box in rows])
    probes = []
    for i in range(n):
        lo = (
            rng.uniform(0, UNIVERSE_SIDE - side),
            rng.uniform(0, UNIVERSE_SIDE - side),
        )
        probes.append(
            (i, Box(lo, (lo[0] + rng.uniform(1, side), lo[1] + rng.uniform(1, side))))
        )
    return table, probes


def bench_scale(n: int, pools: dict) -> dict:
    table, probes = _table_and_probes(n)
    sharding = table.sharding(N_SHARDS)

    serial_stats = ShardJoinStats()
    start = perf_counter()
    serial_pairs = sorted(sharding.join_pairs(probes, stats=serial_stats))
    serial_s = perf_counter() - start

    curve = []
    for workers in WORKERS:
        pool = pools[workers]
        exchange = Exchange(workers=workers, kind="process", pool=pool)
        times = []
        stats = ShardJoinStats()
        for _ in range(REPS):
            stats = ShardJoinStats()
            start = perf_counter()
            pairs = sorted(
                sharding.join_pairs(probes, exchange=exchange, stats=stats)
            )
            times.append(perf_counter() - start)
        curve.append(
            {
                "workers": workers,
                "join_ms": round(min(times) * 1e3, 3),
                "identical": pairs == serial_pairs,
                "counters_identical": (
                    stats.pair_tests == serial_stats.pair_tests
                    and stats.semi_join_tests == serial_stats.semi_join_tests
                    and stats.dedup_skipped == serial_stats.dedup_skipped
                ),
                "fallbacks": exchange.fallbacks,
            }
        )

    # Bounded-memory smoke: the out-of-core path must spill for real and
    # still return the exact in-memory pairs.
    cap = spill_cap(n)
    spill_stats = ShardJoinStats()
    spill_pairs = sorted(
        sharding.join_pairs(probes, stats=spill_stats, spill=cap)
    )
    t1 = next(c for c in curve if c["workers"] == 1)["join_ms"]
    t4 = next(c for c in curve if c["workers"] == 4)["join_ms"]
    row = {
        "size": n,
        "shards": len(sharding.shards),
        "pairs": len(serial_pairs),
        "serial_ms": round(serial_s * 1e3, 3),
        "curve": curve,
        "speedup_4v1": round(t1 / t4, 2) if t4 else float("inf"),
        "shm_published": sharding.shm_published,
        "shm_bytes": sharding.shm_bytes,
        "shm_failed": sharding.shm_failed,
        "spill": {
            "cap": cap,
            "identical": spill_pairs == serial_pairs,
            "spilled_entries": spill_stats.spilled_entries,
            "spill_flushes": spill_stats.spill_flushes,
        },
    }
    sharding.close()
    return row


def engine_bit_identity() -> dict:
    """Full plans with ``shards=S`` vs serial: identical oid streams."""
    q, _world = smugglers_query(
        seed=9, n_towns=60, n_roads=60, states_grid=(4, 4)
    )
    plan = compile_query(q)
    reference = answers_as_oid_tuples(
        build_physical_plan(plan, "boxplan").run()[0], plan.order
    )
    checked, identical = 0, True
    for strategy in ("shardscan", "shardjoin"):
        for shards in (2, N_SHARDS):
            for workers in (0, 2):
                pplan = build_physical_plan(
                    plan,
                    "boxplan",
                    shards=shards,
                    join_strategy=strategy,
                    parallel=workers,
                )
                got = answers_as_oid_tuples(pplan.run()[0], plan.order)
                checked += 1
                identical = identical and got == reference
    return {"answers": len(reference), "plans": checked, "identical": identical}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="benchmarks/out/BENCH_sharded.json")
    parser.add_argument(
        "--check-speedup",
        action="store_true",
        help="enforce the ≥1.5x 4-worker speedup gate (CI has the "
        "cores; a single-core dev box does not)",
    )
    args = parser.parse_args(argv)

    pools = {w: WorkerPool(workers=w, kind="process") for w in WORKERS}
    try:
        rows = [bench_scale(size, pools) for size in SIZES]
    finally:
        for pool in pools.values():
            pool.close()
    engine = engine_bit_identity()

    largest = rows[-1]
    result = {
        "python": platform.python_version(),
        "sizes": SIZES,
        "reps": REPS,
        "shards": N_SHARDS,
        "workers": list(WORKERS),
        "gate": {
            "threshold": SPEEDUP_GATE,
            "enforced": args.check_speedup,
            "size": largest["size"],
            "speedup_4v1": largest["speedup_4v1"],
        },
        "engine_bit_identity": engine,
        "rows": rows,
    }
    os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
    print(f"wrote {args.out}")

    failures = []
    for row in rows:
        points = " ".join(
            f"{c['workers']}w={c['join_ms']}ms" for c in row["curve"]
        )
        print(
            f"sharded join n={row['size']} ({row['shards']} shards, "
            f"{row['pairs']} pairs): serial={row['serial_ms']}ms {points} "
            f"speedup(4v1)={row['speedup_4v1']}x "
            f"shm={row['shm_published']}seg/{row['shm_bytes']}B"
        )
        for c in row["curve"]:
            if not c["identical"]:
                failures.append(
                    f"{c['workers']}-worker join at n={row['size']} "
                    "returned different pairs than the serial coordinator"
                )
            if not c["counters_identical"]:
                failures.append(
                    f"{c['workers']}-worker join at n={row['size']} "
                    "drifted its deterministic counters"
                )
        spill = row["spill"]
        if not spill["identical"]:
            failures.append(
                f"spilled join at n={row['size']} differed from in-memory"
            )
        if not spill["spilled_entries"]:
            failures.append(
                f"spill cap {spill['cap']} never spilled at "
                f"n={row['size']}; the out-of-core path went untested"
            )
    print(
        f"engine plans: {engine['plans']} sharded plans vs serial, "
        f"identical={engine['identical']}"
    )
    if not engine["identical"]:
        failures.append("a sharded physical plan changed the answer stream")
    if args.check_speedup and largest["speedup_4v1"] < SPEEDUP_GATE:
        failures.append(
            f"4-worker join only {largest['speedup_4v1']}x faster at "
            f"n={largest['size']}; the gate requires ≥ {SPEEDUP_GATE}x"
        )
    if not args.check_speedup:
        print("speedup gate not enforced (pass --check-speedup in CI)")

    if failures:
        for failure in failures:
            print(f"GATE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("all sharded gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
