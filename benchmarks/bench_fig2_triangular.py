"""E2 — Figure 2 / Algorithm 1: triangularisation cost.

The paper accepts exponential worst-case compile cost because systems
are small and compilation happens once.  This bench measures the actual
cost on growing containment-chain systems (n variables, n constraints)
and reports output sizes, showing the claim's practical footing.
"""

import pytest

from benchmarks.conftest import report
from repro.constraints import (
    ConstraintSystem,
    nonempty,
    overlaps,
    subset,
    triangular_form,
)


def chain_system(n: int) -> ConstraintSystem:
    """x1 ⊆ x2 ⊆ … ⊆ xn, x1 ≠ 0, with an overlap per adjacent pair."""
    constraints = [nonempty("x1")]
    for i in range(1, n):
        constraints.append(subset(f"x{i}", f"x{i + 1}"))
        constraints.append(overlaps(f"x{i}", f"x{i + 1}"))
    return ConstraintSystem.build(*constraints)


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_triangularisation_scaling(benchmark, n):
    system = chain_system(n)
    order = [f"x{i}" for i in range(1, n + 1)]
    tri = benchmark(triangular_form, system, order)
    sizes = [
        c.lower.size() + c.upper.size() + sum(
            r.p.size() + r.q.size() for r in c.disequations
        )
        for c in tri.constraints
    ]
    benchmark.extra_info["n"] = n
    benchmark.extra_info["formula_sizes"] = sizes
    report(
        f"E2: Algorithm 1 on a chain of n={n}",
        [
            {
                "level": c.variable,
                "ast_size": s,
                "diseqs": len(c.disequations),
            }
            for c, s in zip(tri.constraints, sizes)
        ],
        ["level", "ast_size", "diseqs"],
    )
    # Soundness guard: simplification keeps formulas from exploding on
    # this family (they stay linear-ish in n).
    assert max(sizes) < 50 * n


def test_projection_chain(benchmark):
    """Cost of a full elimination chain (the decision procedure core)."""
    from repro.constraints import eliminate_to_ground

    system = chain_system(6).normalize()
    ground = benchmark(eliminate_to_ground, system)
    assert not ground.variables()
