"""E12 — first-answer latency: streaming vs batch execution.

The paper's incremental construction naturally pipelines: the first
solution tuples can be reported long before the search space is
exhausted.  This bench measures time-to-first-answer and index probes
for the depth-first streaming executor against the batch executor.
"""


from benchmarks.conftest import report
from repro.datagen import smugglers_query
from repro.engine import compile_query, execute, first_k


def _plan():
    q, _ = smugglers_query(
        seed=31, n_towns=40, n_roads=40, states_grid=(3, 3)
    )
    return q, compile_query(q)


def test_batch_all_answers(benchmark):
    q, plan = _plan()
    answers, stats = benchmark(execute, plan, "boxplan")
    benchmark.extra_info["tuples"] = len(answers)


def test_streaming_first_answer(benchmark):
    q, plan = _plan()
    got = benchmark(first_k, plan, 1)
    assert len(got) == 1


def test_streaming_all_answers(benchmark):
    from repro.engine import execute_iter

    q, plan = _plan()
    streamed = benchmark(lambda: list(execute_iter(plan, "boxplan")))
    batch, _ = execute(plan, "boxplan")
    assert len(streamed) == len(batch)


def test_probe_comparison(benchmark):
    q, plan = _plan()
    for t in q.tables.values():
        t.reset_stats()
    first_k(plan, 1)
    probes_first = sum(t.probes for t in q.tables.values())
    for t in q.tables.values():
        t.reset_stats()
    execute(plan, "boxplan")
    probes_batch = sum(t.probes for t in q.tables.values())
    report(
        "E12: index probes",
        [
            {"strategy": "first answer (streaming)", "probes": probes_first},
            {"strategy": "all answers (batch)", "probes": probes_batch},
        ],
        ["strategy", "probes"],
    )
    assert probes_first <= probes_batch
