"""E12 — first-answer latency: streaming vs batch execution.

The paper's incremental construction naturally pipelines, and the
operator-tree engine makes that literal: every operator is a pull-based
iterator, so the first solution tuples are reported long before the
search space is exhausted.  This bench measures time-to-first-answer
(``execute_iter(..., limit=1)``) against full materialization, plus the
index-probe gap and the probe-cache effect on repeated queries.
"""

from time import perf_counter

from benchmarks.conftest import report
from repro.datagen import smugglers_query
from repro.engine import (
    ProbeCache,
    build_physical_plan,
    compile_query,
    execute,
    execute_iter,
    first_k,
)


def _plan():
    q, _ = smugglers_query(
        seed=31, n_towns=40, n_roads=40, states_grid=(3, 3)
    )
    return q, compile_query(q)


def test_batch_all_answers(benchmark):
    q, plan = _plan()
    answers, stats = benchmark(execute, plan, "boxplan")
    benchmark.extra_info["tuples"] = len(answers)


def test_streaming_first_answer(benchmark):
    q, plan = _plan()
    got = benchmark(lambda: list(execute_iter(plan, "boxplan", limit=1)))
    assert len(got) == 1


def test_streaming_all_answers(benchmark):
    q, plan = _plan()
    streamed = benchmark(lambda: list(execute_iter(plan, "boxplan")))
    batch, _ = execute(plan, "boxplan")
    assert len(streamed) == len(batch)


def test_time_to_first_answer_vs_total():
    """Report E12's headline: the first answer arrives in a fraction of
    the full-materialization time (best of 5 runs each)."""
    q, plan = _plan()
    pplan = build_physical_plan(plan, "boxplan", estimate=False)

    def once_first():
        start = perf_counter()
        got = next(iter(pplan.execute_iter(limit=1)), None)
        assert got is not None, "workload has no answers"
        return perf_counter() - start

    def once_total():
        start = perf_counter()
        list(pplan.execute_iter())
        return perf_counter() - start

    first = min(once_first() for _ in range(5))
    total = min(once_total() for _ in range(5))
    report(
        "E12: time to first answer",
        [
            {
                "first_answer_ms": round(first * 1e3, 3),
                "all_answers_ms": round(total * 1e3, 3),
                "ratio": round(first / total, 4),
            }
        ],
        ["first_answer_ms", "all_answers_ms", "ratio"],
    )
    assert first < total


def test_probe_comparison(benchmark):
    q, plan = _plan()
    for t in q.tables.values():
        t.reset_stats()
    first_k(plan, 1)
    probes_first = sum(t.probes for t in q.tables.values())
    for t in q.tables.values():
        t.reset_stats()
    execute(plan, "boxplan")
    probes_batch = sum(t.probes for t in q.tables.values())
    report(
        "E12: index probes",
        [
            {"strategy": "first answer (streaming)", "probes": probes_first},
            {"strategy": "all answers (batch)", "probes": probes_batch},
        ],
        ["strategy", "probes"],
    )
    assert probes_first <= probes_batch


def test_probe_cache_on_repeated_queries(benchmark):
    """A shared ProbeCache makes the second identical execution free of
    index work (every probe repeats against unchanged tables)."""
    q, plan = _plan()
    cache = ProbeCache(maxsize=4096)
    answers_cold, stats_cold = execute(plan, "boxplan", cache=cache)
    answers_warm, stats_warm = benchmark(
        execute, plan, "boxplan", cache=cache
    )
    assert len(answers_warm) == len(answers_cold)
    report(
        "E12: probe cache (repeated query)",
        [
            {
                "run": "cold",
                "node_reads": stats_cold.node_reads,
                "cache_hit_rate": round(stats_cold.cache_hit_rate, 3),
            },
            {
                "run": "warm",
                "node_reads": stats_warm.node_reads,
                "cache_hit_rate": round(stats_warm.cache_hit_rate, 3),
            },
        ],
        ["run", "node_reads", "cache_hit_rate"],
    )
    assert stats_warm.node_reads == 0
    assert stats_warm.cache_hit_rate == 1.0
