"""Shared helpers for the benchmark suite.

Every benchmark prints a small report table (captured by
``--benchmark-only -s`` or in the saved extra_info) with the
machine-independent counters the paper's cost model cares about.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def report(title: str, rows: List[Dict], columns: Sequence[str]) -> str:
    """Format a fixed-width table; also returned so benches can assert."""
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = [f"== {title} =="]
    lines.append("  ".join(str(c).ljust(widths[c]) for c in columns))
    for r in rows:
        lines.append(
            "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in columns)
        )
    text = "\n".join(lines)
    print("\n" + text)
    return text
