"""E7 — proj exactness (Theorems 7/8/9) measured, not just proved.

Over random systems we measure (a) the time of a projection step,
(b) the agreement rate between the symbolic decision procedure and
constructive witness building over the interval algebra (must be 100%),
and (c) the *approximation gap* over an atomic algebra: how often
``proj`` admits prefixes with no extension (Example 1's phenomenon) —
nonzero by design, showing why atomlessness matters.
"""

import random


from benchmarks.conftest import report
from repro.algebra import BitVectorAlgebra, IntervalAlgebra
from repro.boolean import Var, conj, disj, neg
from repro.constraints import (
    EquationalSystem,
    WitnessError,
    build_witness,
    project,
    satisfiable_atomless,
)


def random_formula(rng: random.Random, names, depth=3):
    if depth == 0 or rng.random() < 0.3:
        base = Var(rng.choice(names))
        return base if rng.random() < 0.7 else neg(base)
    op = rng.choice([conj, disj])
    return op(
        random_formula(rng, names, depth - 1),
        random_formula(rng, names, depth - 1),
    )


def random_system(rng: random.Random, names=("x", "y", "z")):
    f = random_formula(rng, names)
    gs = [random_formula(rng, names) for _ in range(rng.randrange(1, 3))]
    return EquationalSystem(f, gs)


def test_projection_speed(benchmark):
    rng = random.Random(5)
    systems = [random_system(rng) for _ in range(50)]

    def run():
        return [project(s, "x") for s in systems]

    benchmark(run)


def test_decision_witness_agreement_rate(benchmark):
    """Symbolic SAT == constructive model existence, on 200 systems."""
    rng = random.Random(7)
    systems = [random_system(rng) for _ in range(200)]
    line = IntervalAlgebra(0, 16)

    def agreement():
        agree = sat_count = 0
        for s in systems:
            sat = satisfiable_atomless(s)
            try:
                env = build_witness(s, line)
                built = s.holds(line, env)
            except WitnessError:
                built = False
            agree += built == sat
            sat_count += sat
        return agree, sat_count

    agree, sat_count = benchmark.pedantic(agreement, rounds=1, iterations=1)
    report(
        "E7: decision vs witness over the atomless interval algebra",
        [
            {
                "systems": len(systems),
                "satisfiable": sat_count,
                "agreement": f"{agree}/{len(systems)}",
            }
        ],
        ["systems", "satisfiable", "agreement"],
    )
    assert agree == len(systems)  # Theorems 7/8: must be exact


def test_atomic_gap_rate(benchmark):
    """Over B_1 (one atom), proj over-approximates: measure how often."""
    rng = random.Random(11)
    alg = BitVectorAlgebra(1)  # the most atomic algebra: {0, 1}
    gap = total = 0
    for _ in range(300):
        s = random_system(rng, names=("x", "y"))
        projected = project(s, "x")
        for yv in alg.elements():
            env = {"y": yv, "x": 0}
            if not projected.holds(alg, env):
                continue
            total += 1
            extendable = any(
                s.holds(alg, {"y": yv, "x": xv}) for xv in alg.elements()
            )
            if not extendable:
                gap += 1
    rate = gap / total if total else 0.0
    report(
        "E7: approximation gap on the atomic algebra B1",
        [
            {
                "prefixes_admitted": total,
                "unextendable": gap,
                "gap_rate": f"{rate:.1%}",
            }
        ],
        ["prefixes_admitted", "unextendable", "gap_rate"],
    )
    # The gap must exist (non-closure is real) — Example 1 in the wild.
    assert gap > 0
