"""E11 — index-construction ablation: quadratic vs linear split vs STR.

The paper treats the spatial index as a black box with a range-query
contract.  This ablation verifies that the optimization is robust to
the index variant (all return the same rows) and measures the classical
build/query trade-off: linear split builds faster, quadratic queries a
bit better, STR bulk loading wins both when the data is known up front.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.boxes import Box, BoxQuery
from repro.spatial import RTree

N = 2000


def _boxes(seed=1):
    rng = random.Random(seed)
    out = []
    for _ in range(N):
        lo = (rng.uniform(0, 95), rng.uniform(0, 95))
        out.append(
            Box(lo, (lo[0] + rng.uniform(0.5, 5), lo[1] + rng.uniform(0.5, 5)))
        )
    return out


ITEMS = _boxes()
QUERIES = [
    BoxQuery(overlap=(Box((x, y), (x + 4.0, y + 4.0)),))
    for x in (10.0, 40.0, 70.0)
    for y in (15.0, 45.0, 75.0)
]


def _build(method: str) -> RTree:
    if method == "str":
        return RTree.bulk_load(
            [(b, i) for i, b in enumerate(ITEMS)], max_entries=8
        )
    tree = RTree(max_entries=8, split_method=method)
    for i, b in enumerate(ITEMS):
        tree.insert(b, i)
    return tree


@pytest.mark.parametrize("method", ["quadratic", "linear", "str"])
def test_build(benchmark, method):
    tree = benchmark(_build, method)
    assert len(tree) == N
    benchmark.extra_info["method"] = method
    benchmark.extra_info["height"] = tree.height()


@pytest.mark.parametrize("method", ["quadratic", "linear", "str"])
def test_query(benchmark, method):
    tree = _build(method)
    expected = [
        {i for i, b in enumerate(ITEMS) if q.matches(b)} for q in QUERIES
    ]

    def run():
        return [
            {v for _b, v in tree.search(q)} for q in QUERIES
        ]

    got = benchmark(run)
    assert got == expected
    tree.stats.reset()
    for q in QUERIES:
        list(tree.search(q))
    benchmark.extra_info["method"] = method
    benchmark.extra_info["node_reads"] = tree.stats.node_reads
    report(
        f"E11: query probes [{method}]",
        [
            {
                "method": method,
                "height": tree.height(),
                "node_reads_9_queries": tree.stats.node_reads,
            }
        ],
        ["method", "height", "node_reads_9_queries"],
    )
