"""E3 — Figure 3: one range query answers combined box constraints.

The paper's reduction: a conjunction of ``⊑ a``, ``b ⊑``, ``⊓ c ≠ ∅``
constraints over an unknown box is ONE orthogonal range query in the
2k-dimensional point space.  We verify the three backends (grid file on
points, R-tree, scan) return identical rows and compare their probe
costs and times.
"""

import random

import pytest

from benchmarks.conftest import report
from repro.algebra import Region
from repro.boxes import Box, BoxQuery
from repro.spatial import SpatialTable, figure3_rectangle

UNIVERSE = Box((0.0, 0.0), (100.0, 100.0))
N_OBJECTS = 800


def make_tables():
    rng = random.Random(42)
    boxes = []
    for i in range(N_OBJECTS):
        lo = (rng.uniform(0, 92), rng.uniform(0, 92))
        boxes.append(
            Box(lo, (lo[0] + rng.uniform(1, 8), lo[1] + rng.uniform(1, 8)))
        )
    tables = {}
    for kind in ("rtree", "grid", "scan"):
        t = SpatialTable(f"t_{kind}", 2, index=kind, universe=UNIVERSE)
        for i, b in enumerate(boxes):
            t.insert(i, Region.from_box(b))
        tables[kind] = t
    return tables


#: The combined query of Figure 3's shape: containment + cover + overlap.
QUERY = BoxQuery(
    inside=Box((10.0, 10.0), (70.0, 70.0)),
    covers=Box((30.0, 30.0), (30.5, 30.5)),
    overlap=(Box((25.0, 25.0), (40.0, 40.0)),),
)

_tables = make_tables()


@pytest.mark.parametrize("kind", ["grid", "rtree", "scan"])
def test_single_range_query(benchmark, kind):
    table = _tables[kind]
    # Per-query probe counters (single run), then timing (many runs).
    table.reset_stats()
    rows = table.range_query(QUERY)
    stats = table.index_stats()
    benchmark(table.range_query, QUERY)
    expected = {o.oid for o in _tables["scan"].range_query(QUERY)}
    assert {o.oid for o in rows} == expected
    benchmark.extra_info["backend"] = kind
    benchmark.extra_info["index_stats"] = stats
    report(
        f"E3: combined query on {kind}",
        [{"backend": kind, "rows": len(rows), **stats}],
        ["backend", "rows"] + [k for k in stats if k != "kind"],
    )


def test_figure3_rectangle_shape(benchmark):
    """The literal Figure 3 picture: intervals as 2-D points."""
    pr = figure3_rectangle(a=(4, 5), b=(0, 10), c=(7, 9))
    rows = [
        {
            "axis": "start (lo)",
            "from": f"{pr.lo[0]:g}",
            "to": f"{pr.hi[0]:g}",
        },
        {
            "axis": "end (hi)",
            "from": f"{pr.lo[1]:g}",
            "to": f"{pr.hi[1]:g}",
        },
    ]
    report("E3: Figure 3 rectangle for a=[4,5) b=[0,10) c=[7,9)", rows,
           ["axis", "from", "to"])
    # start must lie in [0, 4], end in [7+, 10]: the shaded rectangle.
    assert pr.lo[0] == 0 and pr.hi[0] == 4
    assert 7 < pr.lo[1] <= 7 + 1e-6 and pr.hi[1] == 10


def test_selective_query_beats_scan_probes(benchmark):
    """An R-tree range query must touch far fewer entries than a scan."""
    table = _tables["rtree"]
    q = BoxQuery(overlap=(Box((50.0, 50.0), (52.0, 52.0)),))
    table.reset_stats()
    rows = table.range_query(q)
    reads = table.index_stats()["node_reads"]
    benchmark(table.range_query, q)
    assert reads < N_OBJECTS / 4
    report(
        "E3: selectivity",
        [{"rows": len(rows), "node_reads_per_query": reads}],
        ["rows", "node_reads_per_query"],
    )
