"""E4 — Algorithm 2 and BCF cost.

The paper: "The time to compute BCF is exponential in the number of
variables... We feel that in practice this will not be a problem since
both algorithms are executed during query compilation."  This bench
exhibits the exponential growth on the classic worst-ish-case family
(disjunctions of conjunction pairs) AND shows the absolute cost at the
sizes real constraint systems have (a handful of variables).
"""

import pytest

from benchmarks.conftest import report
from repro.boolean import Var, blake_canonical_form, conj, disj
from repro.boxes import approximate


def hard_formula(pairs: int):
    """(x1&y1) | (x2&y2) | … — BCF has ~2^pairs prime implicants? No:
    each term is already prime; the multiplication happens in the dual.
    We use the complement-style family via CNF→DNF distribution:
    (x1|y1) & (x2|y2) & … has 2^pairs DNF terms, all prime."""
    parts = [disj(Var(f"x{i}"), Var(f"y{i}")) for i in range(pairs)]
    return conj(*parts)


@pytest.mark.parametrize("pairs", [2, 4, 6, 8])
def test_bcf_exponential_family(benchmark, pairs):
    f = hard_formula(pairs)
    bcf = benchmark(blake_canonical_form, f)
    assert len(bcf) == 2 ** pairs  # every choice of one literal per pair
    benchmark.extra_info["pairs"] = pairs
    benchmark.extra_info["primes"] = len(bcf)
    report(
        f"E4: BCF blowup, {pairs} pairs",
        [{"variables": 2 * pairs, "prime_implicants": len(bcf)}],
        ["variables", "prime_implicants"],
    )


def test_bcf_at_realistic_query_size(benchmark):
    """The §2 example's formulas have ≤5 variables — compile cost is
    microseconds, supporting the paper's 'not a problem' claim."""
    A, B, C, R, T = (Var(v) for v in "ABCRT")
    f = (A & ~C) | (B & ~C) | (R & ~A & ~B & ~T)
    bcf = benchmark(blake_canonical_form, f)
    assert bcf  # non-empty


def test_full_approximation_pipeline(benchmark):
    """L/U for the paper's Example 2 formula (BCF + both extractions)."""
    x, y, z, w = (Var(v) for v in "xyzw")
    f = (x & y) | (~x & (y | (z & w)))
    ap = benchmark(approximate, f)
    from repro.boxes import BoxVar, bjoin, bmeet

    assert ap.lower == BoxVar("y")
    assert ap.upper == bjoin(BoxVar("y"), bmeet(BoxVar("z"), BoxVar("w")))
