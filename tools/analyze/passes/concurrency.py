"""Pass 3 — lock discipline on shared-state classes (REPRO301).

Classes whose instances are shared across threads (``ProbeCache``,
``SnapshotStore``, ``WorkerPool``, ``ShardColumnBlock``, ``Database``,
...) declare which lock guards which attribute with a structured
comment on the attribute's ``__init__`` assignment::

    def __init__(self):
        self._lock = threading.Lock()
        self._entries = {}   # guarded-by: _lock

The pass then flags any mutation of a guarded attribute — assignment,
augmented assignment, subscript store/delete, or a mutating method call
(``append``/``update``/``clear``/...) — outside a ``with self._lock:``
region.  Conventions honored:

* ``__init__`` itself is exempt (publication happens-before sharing);
* methods whose name ends in ``_locked`` are exempt (the suffix is the
  project convention for "caller holds the lock");
* reads are never flagged — lock-free read paths (``SnapshotStore.
  current``) are a designed-in pattern here.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List

from ..core import (
    Finding,
    Module,
    Rule,
    SymbolTable,
    attr_chain,
    iter_class_methods,
)

RULES = {
    "REPRO301": Rule(
        id="REPRO301",
        name="unguarded-shared-mutation",
        summary="guarded-by attribute mutated outside its lock",
        fix="wrap the mutation in `with self.<lock>:` or rename the "
        "method with the `_locked` suffix if the caller holds it",
    ),
}

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Method calls on an attribute that mutate the underlying container.
MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "popleft",
    "remove",
    "setdefault",
    "sort",
    "update",
}


class ConcurrencyPass:
    name = "concurrency"
    rules = RULES

    def run(self, module: Module, symtab: SymbolTable) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded = self._guarded_attrs(module, node)
            if not guarded:
                continue
            for method in iter_class_methods(node):
                if method.name == "__init__":
                    continue
                if method.name.endswith("_locked"):
                    continue
                self._check_method(
                    module, node.name, method, guarded, findings
                )
        return findings

    def _guarded_attrs(
        self, module: Module, cls: ast.ClassDef
    ) -> Dict[str, str]:
        """attr name -> lock name, from ``# guarded-by:`` annotations."""
        guarded: Dict[str, str] = {}
        for method in iter_class_methods(cls):
            if method.name != "__init__":
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    chain = attr_chain(target)
                    if not chain.startswith("self.") or chain.count(".") != 1:
                        continue
                    lock = self._annotation_at(module, stmt.lineno)
                    if lock:
                        guarded[chain.split(".", 1)[1]] = lock
        return guarded

    @staticmethod
    def _annotation_at(module: Module, lineno: int) -> str:
        for line in (lineno, lineno - 1):
            m = _GUARD_RE.search(module.line_comment(line))
            if m:
                return m.group(1)
        return ""

    def _check_method(
        self,
        module: Module,
        class_name: str,
        method: ast.FunctionDef,
        guarded: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        def visit(node: ast.AST, held: FrozenSet[str]) -> None:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                # Nested defs get a fresh frame; the lock is not known
                # to be held when the closure eventually runs.
                for child in ast.iter_child_nodes(node):
                    visit(child, frozenset())
                return
            if isinstance(node, ast.With):
                locks = set(held)
                for item in node.items:
                    chain = attr_chain(item.context_expr)
                    if chain.startswith("self."):
                        locks.add(chain.split(".", 1)[1])
                for child in node.body:
                    visit(child, frozenset(locks))
                return
            attr = _mutated_attr(node, guarded)
            if attr is not None and guarded[attr] not in held:
                findings.append(
                    Finding(
                        rule="REPRO301",
                        severity=RULES["REPRO301"].severity,
                        path=module.relpath,
                        line=node.lineno,  # type: ignore[attr-defined]
                        column=node.col_offset,  # type: ignore[attr-defined]
                        symbol=f"{class_name}.{method.name}",
                        message=(
                            f"self.{attr} (guarded-by: {guarded[attr]}) "
                            f"mutated outside `with self."
                            f"{guarded[attr]}:`"
                        ),
                        fix_hint=RULES["REPRO301"].fix,
                    )
                )
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in method.body:
            visit(stmt, frozenset())


def _mutated_attr(node: ast.AST, guarded: Dict[str, str]) -> str | None:
    """The guarded attribute this node mutates, if any."""

    def own_attr(expr: ast.expr) -> str | None:
        chain = attr_chain(expr)
        if chain.startswith("self.") and chain.count(".") == 1:
            attr = chain.split(".", 1)[1]
            if attr in guarded:
                return attr
        return None

    if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            direct = own_attr(target)
            if direct is not None:
                return direct
            if isinstance(target, ast.Subscript):
                via_sub = own_attr(target.value)
                if via_sub is not None:
                    return via_sub
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    nested = own_attr(elt)
                    if nested is not None:
                        return nested
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                via_sub = own_attr(target.value)
                if via_sub is not None:
                    return via_sub
            direct = own_attr(target)
            if direct is not None:
                return direct
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS:
            return own_attr(node.func.value)
    return None
