"""The five project-specific repro-lint passes."""

from .billing import BillingPass
from .concurrency import ConcurrencyPass
from .determinism import DeterminismPass
from .operator_contract import OperatorContractPass
from .pickle_safety import PickleSafetyPass

ALL_PASSES = (
    DeterminismPass,
    BillingPass,
    ConcurrencyPass,
    PickleSafetyPass,
    OperatorContractPass,
)

__all__ = [
    "ALL_PASSES",
    "BillingPass",
    "ConcurrencyPass",
    "DeterminismPass",
    "OperatorContractPass",
    "PickleSafetyPass",
]
