"""Pass 1 — determinism (REPRO101-104).

The repo's headline gates are bit-identity equalities: parallel ≡
serial, vectorized ≡ scalar, spilled ≡ in-memory, sharded ≡ unsharded.
All of them die the moment result paths consume a nondeterministic
source.  This pass flags, in ``engine/`` and ``spatial/``:

* REPRO101 — unseeded ``random`` (module-level functions, or
  ``random.Random()`` with no seed argument);
* REPRO102 — wall-clock reads outside timing bookkeeping (a clock value
  flowing anywhere but a timing-named variable can steer result
  content);
* REPRO103 — iterating a ``set``/``frozenset`` into ordered output
  without ``sorted()`` (set iteration order varies across processes
  because of hash randomization, which breaks parallel merges);
* REPRO104 — ``id()``-based ordering (``key=id`` or ``id()`` inside a
  comparison); CPython ids are allocation addresses and differ between
  the serial and the forked-worker run.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from ..core import Finding, Module, Rule, SymbolTable, attr_chain

RULES = {
    "REPRO101": Rule(
        id="REPRO101",
        name="unseeded-random",
        summary="unseeded random source in a deterministic layer",
        fix="use random.Random(seed) with an explicit seed plumbed "
        "from the caller",
    ),
    "REPRO102": Rule(
        id="REPRO102",
        name="wall-clock-in-result-path",
        summary="wall-clock read outside timing bookkeeping",
        severity="warning",
        fix="assign the clock value to a timing-named variable "
        "(started/elapsed/...) or move it out of the result path",
    ),
    "REPRO103": Rule(
        id="REPRO103",
        name="unordered-set-iteration",
        summary="set/frozenset iterated into ordered output without "
        "sorted()",
        fix="wrap the iterable in sorted(...) with a deterministic key",
    ),
    "REPRO104": Rule(
        id="REPRO104",
        name="id-based-ordering",
        summary="id() used as a sort key or in an ordering comparison",
        fix="order by a stable attribute (oid, sequence tag) instead "
        "of the allocation address",
    ),
}

_RANDOM_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "sample",
    "shuffle",
    "gauss",
    "betavariate",
    "expovariate",
    "normalvariate",
    "triangular",
    "seed",
    "getrandbits",
}
_CLOCK_ATTRS = {
    "time": {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
    },
    "datetime": {"now", "utcnow", "today"},
}
_TIMING_NAME_RE = re.compile(
    r"(time|start|began|begin|end|stop|elapsed|deadline|stamp|t0|t1|"
    r"now|wall|clock|duration|latency|tick|deduct|budget)",
    re.IGNORECASE,
)
_TIMING_FUNC_RE = re.compile(
    r"(bench|timing|timer|profile|elapsed|wall|clock)", re.IGNORECASE
)
_SET_BUILTINS = {"set", "frozenset"}


def _in_scope(relpath: str) -> bool:
    norm = relpath.replace("\\", "/")
    return "/engine/" in norm or "/spatial/" in norm or norm.startswith(
        ("engine/", "spatial/")
    )


class DeterminismPass:
    name = "determinism"
    rules = RULES

    def run(self, module: Module, symtab: SymbolTable) -> List[Finding]:
        if not _in_scope(module.relpath):
            return []
        findings: List[Finding] = []
        visitor = _Visitor(module, findings)
        visitor.visit(module.tree)
        return findings


class _Visitor(ast.NodeVisitor):
    def __init__(self, module: Module, findings: List[Finding]):
        self.module = module
        self.findings = findings
        self.scope: List[str] = []
        # Per-function map of local names known to be bound to sets.
        self.set_names: List[Set[str]] = []

    # -- scope tracking -------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(self, node) -> None:
        self.scope.append(node.name)
        self.set_names.append(set())
        self.generic_visit(node)
        self.set_names.pop()
        self.scope.pop()

    def _symbol(self) -> str:
        return ".".join(self.scope)

    def _add(
        self, rule: str, node: ast.AST, message: str, fix: str = ""
    ) -> None:
        info = RULES[rule]
        self.findings.append(
            Finding(
                rule=rule,
                severity=info.severity,
                path=self.module.relpath,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                symbol=self._symbol(),
                message=message,
                fix_hint=fix or info.fix,
            )
        )

    # -- set-name inference ---------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self.set_names and _is_set_expr(node.value, self._sets()):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_names[-1].add(target.id)
        self.generic_visit(node)

    def _sets(self) -> Set[str]:
        return self.set_names[-1] if self.set_names else set()

    # -- the rules ------------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        chain = attr_chain(node.func)
        # REPRO101: unseeded random.
        if chain.startswith("random."):
            attr = chain.split(".", 1)[1]
            if attr in _RANDOM_FUNCS:
                self._add(
                    "REPRO101",
                    node,
                    f"call to module-level random.{attr}() uses the "
                    "shared unseeded generator",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                self._add(
                    "REPRO101",
                    node,
                    "random.Random() constructed without a seed",
                )
        # REPRO102: wall clock.
        mod, _, attr = chain.rpartition(".")
        mod = mod.rpartition(".")[2]
        if mod in _CLOCK_ATTRS and attr in _CLOCK_ATTRS[mod]:
            if not self._timing_context(node):
                self._add(
                    "REPRO102",
                    node,
                    f"wall-clock read {chain}() outside timing "
                    "bookkeeping may steer result content",
                )
        # REPRO103: list()/tuple() over a set.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and node.args
            and _is_set_expr(node.args[0], self._sets())
        ):
            self._add(
                "REPRO103",
                node,
                f"{node.func.id}() materializes a set in hash order",
            )
        # REPRO104: key=id in sorted()/sort()/min()/max().
        if chain.endswith(("sorted", ".sort", "min", "max")):
            for kw in node.keywords:
                if kw.arg == "key" and _is_id_key(kw.value):
                    self._add(
                        "REPRO104",
                        node,
                        "sort key is id(); allocation addresses differ "
                        "between serial and worker processes",
                    )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter, self._sets()):
            self._add(
                "REPRO103",
                node,
                "for-loop iterates a set in hash order",
            )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # REPRO104: id() inside an ordering comparison.
        ordered = any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
            for op in node.ops
        )
        if ordered:
            for sub in [node.left, *node.comparators]:
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                ):
                    self._add(
                        "REPRO104",
                        node,
                        "id() compared with an ordering operator",
                    )
                    break
        self.generic_visit(node)

    # -- helpers --------------------------------------------------------------
    def _timing_context(self, node: ast.Call) -> bool:
        """True when the clock read is plainly timing bookkeeping."""
        for name in reversed(self.scope):
            if _TIMING_FUNC_RE.search(name):
                return True
        stmt = _enclosing_statement(self.module.tree, node)
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                text = attr_chain(target) or ast.dump(target)
                if _TIMING_NAME_RE.search(text):
                    return True
        return False


def _enclosing_statement(
    tree: ast.AST, target: ast.AST
) -> Optional[ast.stmt]:
    """The innermost statement containing ``target`` (by identity)."""
    best: Optional[ast.stmt] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.stmt):
            for sub in ast.walk(node):
                if sub is target:
                    best = node  # keep narrowing: walk yields outer first
                    break
    return best


def _is_set_expr(expr: ast.expr, known_sets: Set[str]) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in _SET_BUILTINS
    ):
        return True
    if isinstance(expr, ast.Name) and expr.id in known_sets:
        return True
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(expr.left, known_sets) or _is_set_expr(
            expr.right, known_sets
        )
    return False


def _is_id_key(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Name) and expr.id == "id":
        return True
    if isinstance(expr, ast.Lambda):
        for sub in ast.walk(expr.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
    return False
