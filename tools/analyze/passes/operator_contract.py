"""Pass 5 — the Volcano operator contract (REPRO501-503).

Every ``PhysicalOperator`` subclass participates in three protocols
that ``PhysicalPlan``/``explain`` assume structurally:

* REPRO501 — the iterator protocol: the class (or an ancestor) must
  provide ``iterate``, and when the provider is a template base
  (``ExtendStep`` -> ``_rows``, ``_BulkJoinStep`` ->
  ``_candidate_pairs``) the class must implement or inherit the hook;
* REPRO502 — estimate plumbing: an operator defining ``__init__`` must
  call ``super().__init__(...)`` (or set ``self.stats`` and
  ``self.est_rows`` itself) so EXPLAIN's estimate/actual columns and
  stats folding have their fields;
* REPRO503 — stats propagation: a directly-defined ``iterate`` must
  set ``self.stats.executed`` so ``ExecutionStats`` and
  ``explain(analyze=True)`` see the operator as pulled.

Abstract template bases (a hook body that just raises
``NotImplementedError``) are exempt from REPRO501.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..core import (
    ClassInfo,
    Finding,
    Module,
    Rule,
    SymbolTable,
    attr_chain,
    iter_class_methods,
)

RULES = {
    "REPRO501": Rule(
        id="REPRO501",
        name="missing-iterate",
        summary="operator provides neither iterate() nor its template "
        "base's hook",
        fix="implement iterate(ctx), or the template hook (_rows/"
        "_candidate_pairs) of the base you derive from",
    ),
    "REPRO502": Rule(
        id="REPRO502",
        name="broken-estimate-plumbing",
        summary="__init__ neither calls super().__init__ nor sets "
        "stats/est_rows",
        fix="call super().__init__(child) first; it wires self.stats "
        "and self.est_rows for EXPLAIN and stats folding",
    ),
    "REPRO503": Rule(
        id="REPRO503",
        name="missing-executed-mark",
        summary="iterate() never sets self.stats.executed",
        fix="set self.stats.executed = True on entry so "
        "explain(analyze=True) reports the operator as pulled",
    ),
}

#: Template bases and the hook a subclass may implement instead of
#: ``iterate`` itself.
TEMPLATE_HOOKS = {
    "ExtendStep": "_rows",
    "_BulkJoinStep": "_candidate_pairs",
}

ROOT = "PhysicalOperator"


class OperatorContractPass:
    name = "operator-contract"
    rules = RULES

    def run(self, module: Module, symtab: SymbolTable) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.name == ROOT:
                continue
            if not symtab.is_subclass_of(node.name, ROOT):
                continue
            self._check_iterate(module, node, symtab, findings)
            self._check_init(module, node, findings)
            self._check_executed(module, node, findings)
        return findings

    # -- REPRO501 -------------------------------------------------------------
    def _check_iterate(
        self,
        module: Module,
        cls: ast.ClassDef,
        symtab: SymbolTable,
        findings: List[Finding],
    ) -> None:
        chain = symtab.mro_chain(cls.name)
        provider: Optional[ClassInfo] = None
        for info in chain:
            if info.name == ROOT:
                break
            if _defines(info.node, "iterate"):
                provider = info
                break
        if provider is None:
            findings.append(
                self._finding(
                    "REPRO501",
                    module,
                    cls,
                    f"{cls.name} inherits PhysicalOperator.iterate "
                    "(NotImplementedError) and provides no override",
                )
            )
            return
        hook = TEMPLATE_HOOKS.get(provider.name)
        if hook is None or provider.name == cls.name:
            return
        hook_impl = self._hook_provider(chain, hook)
        if hook_impl is None:
            findings.append(
                self._finding(
                    "REPRO501",
                    module,
                    cls,
                    f"{cls.name} relies on {provider.name}.iterate but "
                    f"implements no {hook}() hook",
                )
            )
        elif _is_abstract(hook_impl) and not self._has_concrete_subclass(
            cls.name, hook, symtab
        ):
            findings.append(
                self._finding(
                    "REPRO501",
                    module,
                    cls,
                    f"{cls.name}'s nearest {hook}() is abstract "
                    "(raises NotImplementedError) and no subclass "
                    "provides one",
                )
            )

    @staticmethod
    def _hook_provider(
        chain: List[ClassInfo], hook: str
    ) -> Optional[ast.FunctionDef]:
        for info in chain:
            node = _find_method(info.node, hook)
            if node is not None:
                return node
        return None

    @staticmethod
    def _has_concrete_subclass(
        name: str, hook: str, symtab: SymbolTable
    ) -> bool:
        for sub in symtab.subclasses_of(name):
            node = _find_method(sub.node, hook)
            if node is not None and not _is_abstract(node):
                return True
        return False

    # -- REPRO502 -------------------------------------------------------------
    def _check_init(
        self, module: Module, cls: ast.ClassDef, findings: List[Finding]
    ) -> None:
        init = _find_method(cls, "__init__")
        if init is None:
            return
        calls_super = False
        sets: Dict[str, bool] = {"stats": False, "est_rows": False}
        for node in ast.walk(init):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                if chain.endswith("__init__") or (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Call)
                    and attr_chain(node.func.value.func) == "super"
                ):
                    calls_super = True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    chain = attr_chain(target)
                    if chain == "self.stats":
                        sets["stats"] = True
                    if chain == "self.est_rows":
                        sets["est_rows"] = True
        if not calls_super and not all(sets.values()):
            findings.append(
                self._finding(
                    "REPRO502",
                    module,
                    cls,
                    f"{cls.name}.__init__ neither calls "
                    "super().__init__ nor sets self.stats/"
                    "self.est_rows itself",
                )
            )

    # -- REPRO503 -------------------------------------------------------------
    def _check_executed(
        self, module: Module, cls: ast.ClassDef, findings: List[Finding]
    ) -> None:
        iterate = _find_method(cls, "iterate")
        if iterate is None or _is_abstract(iterate):
            return
        for node in ast.walk(iterate):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if attr_chain(target) == "self.stats.executed":
                        return
        findings.append(
            self._finding(
                "REPRO503",
                module,
                cls,
                f"{cls.name}.iterate never sets self.stats.executed",
            )
        )

    @staticmethod
    def _finding(
        rule: str, module: Module, cls: ast.ClassDef, message: str
    ) -> Finding:
        return Finding(
            rule=rule,
            severity=RULES[rule].severity,
            path=module.relpath,
            line=cls.lineno,
            column=cls.col_offset,
            symbol=cls.name,
            message=message,
            fix_hint=RULES[rule].fix,
        )


def _defines(cls: ast.ClassDef, method: str) -> bool:
    return _find_method(cls, method) is not None


def _find_method(
    cls: ast.ClassDef, method: str
) -> Optional[ast.FunctionDef]:
    for item in iter_class_methods(cls):
        if item.name == method:
            return item
    return None


def _is_abstract(func: ast.FunctionDef) -> bool:
    """A body that only documents and raises NotImplementedError."""
    body = [
        stmt
        for stmt in func.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
    ]
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Raise) and stmt.exc is not None:
        exc = stmt.exc
        name = (
            attr_chain(exc.func)
            if isinstance(exc, ast.Call)
            else attr_chain(exc)
        )
        return name.rpartition(".")[2] == "NotImplementedError"
    return False
