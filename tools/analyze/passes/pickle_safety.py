"""Pass 4 — pickle-safety at the process-pool boundary (REPRO401-402).

The historical ``Box.__reduce__`` bug class: shipping ``Box``/``Region``
object graphs through a ``ProcessPoolExecutor`` either fails outright
or silently costs a deep-pickle per task.  The project's discipline is

* call sites ask ``exchange.uses_processes(n_tasks)`` first, and ship
  *packed* task forms (flat tuples of floats/ints/bytes built by a
  ``_pack_*`` helper) on the process branch;
* worker entry points that accept packed forms carry a ``_packed`` or
  ``_task`` suffix (``_sweep_tile_packed``, ``_sweep_shard_task``).

This pass flags dispatches that break the discipline:

* REPRO401 — ``exchange.run(fn, tasks)`` / ``pool.map(fn, ...)`` /
  ``pool.submit(fn, ...)`` with a worker that is neither a packed form
  nor lexically inside the non-process branch of a
  ``uses_processes()`` conditional;
* REPRO402 — a ``lambda`` or nested function handed to a dispatch that
  may cross a process boundary (never picklable).

Workers received as *parameters* (the generic ``Exchange.run``/
``WorkerPool.map`` plumbing) are skipped — the rule bites at concrete
call sites, where the worker is nameable.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set

from ..core import Finding, Module, Rule, SymbolTable, attr_chain

RULES = {
    "REPRO401": Rule(
        id="REPRO401",
        name="unpacked-process-payload",
        summary="non-packed worker dispatched where pickling may occur",
        fix="guard with `if exchange.uses_processes(len(tasks)):` and "
        "ship a packed task form (see _pack_tile_task) on the "
        "process branch",
    ),
    "REPRO402": Rule(
        id="REPRO402",
        name="unpicklable-worker",
        summary="lambda/closure dispatched to a pool that may pickle it",
        fix="hoist the worker to a module-level function (pickle "
        "resolves workers by qualified name)",
    ),
}

#: Known packed/blob worker entry points, plus the naming convention.
PACKED_WORKERS = {"_sweep_tile_packed", "_sweep_shard_task"}
_PACKED_NAME_RE = re.compile(r"(_packed|_task|_blob)$")

_DISPATCH_METHODS = {"run", "map", "submit"}
_RECEIVER_HINT_RE = re.compile(r"(exchange|pool|executor)", re.IGNORECASE)


def _is_packed_worker(name: str) -> bool:
    return name in PACKED_WORKERS or bool(_PACKED_NAME_RE.search(name))


class PickleSafetyPass:
    name = "pickle-safety"
    rules = RULES

    def run(self, module: Module, symtab: SymbolTable) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(module, node, findings)
        return findings

    def _check_function(
        self,
        module: Module,
        func: ast.FunctionDef,
        findings: List[Finding],
    ) -> None:
        params = {a.arg for a in func.args.args}
        params.update(a.arg for a in func.args.kwonlyargs)
        params.update(a.arg for a in func.args.posonlyargs)
        # Receivers constructed locally with a thread/serial kind never
        # pickle; track them so their dispatches are exempt.
        thread_only = _thread_only_receivers(func)
        local_defs = {
            n.name
            for n in ast.walk(func)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            and n is not func
        }

        def visit_block(stmts: List[ast.stmt], safe_branch: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, ast.If) and _tests_uses_processes(
                    stmt.test
                ):
                    visit_block(stmt.body, False)
                    visit_block(stmt.orelse, True)
                    if _terminates(stmt.body):
                        # The process branch returned/raised, so the
                        # rest of this block is the non-process
                        # fall-through.
                        safe_branch = True
                    continue
                visit(stmt, safe_branch)

        def visit(node: ast.AST, safe_branch: bool) -> None:
            if isinstance(node, ast.If) and _tests_uses_processes(node.test):
                visit_block(node.body, False)
                visit_block(node.orelse, True)
                return
            if isinstance(node, ast.Call):
                self._check_dispatch(
                    module,
                    func,
                    node,
                    safe_branch,
                    params,
                    thread_only,
                    local_defs,
                    findings,
                )
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # nested defs are checked as functions
                visit(child, safe_branch)

        visit_block(func.body, False)

    def _check_dispatch(
        self,
        module: Module,
        func: ast.FunctionDef,
        call: ast.Call,
        safe_branch: bool,
        params: Set[str],
        thread_only: Set[str],
        local_defs: Set[str],
        findings: List[Finding],
    ) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        if call.func.attr not in _DISPATCH_METHODS or not call.args:
            return
        receiver = attr_chain(call.func.value)
        recv_tail = receiver.rpartition(".")[2]
        if not _RECEIVER_HINT_RE.search(recv_tail):
            return
        if recv_tail in thread_only:
            return
        worker = call.args[0]

        if isinstance(worker, ast.Lambda):
            findings.append(
                self._finding(
                    "REPRO402",
                    module,
                    func,
                    call,
                    f"lambda dispatched via {receiver}."
                    f"{call.func.attr}() cannot cross a process "
                    "boundary",
                )
            )
            return

        worker_name = _worker_name(worker)
        if worker_name is None:
            return
        if worker_name in params:
            return  # generic plumbing: the worker is a parameter
        if worker_name in local_defs:
            findings.append(
                self._finding(
                    "REPRO402",
                    module,
                    func,
                    call,
                    f"nested function {worker_name!r} dispatched via "
                    f"{receiver}.{call.func.attr}() cannot cross a "
                    "process boundary",
                )
            )
            return
        if _is_packed_worker(worker_name) or safe_branch:
            return
        findings.append(
            self._finding(
                "REPRO401",
                module,
                func,
                call,
                f"{receiver}.{call.func.attr}({worker_name}, ...) may "
                "pickle raw task objects; dispatch a packed form or "
                "guard with uses_processes()",
            )
        )

    @staticmethod
    def _finding(
        rule: str,
        module: Module,
        func: ast.FunctionDef,
        call: ast.Call,
        message: str,
    ) -> Finding:
        return Finding(
            rule=rule,
            severity=RULES[rule].severity,
            path=module.relpath,
            line=call.lineno,
            column=call.col_offset,
            symbol=func.name,
            message=message,
            fix_hint=RULES[rule].fix,
        )


def _terminates(stmts: List[ast.stmt]) -> bool:
    """Whether control cannot fall off the end of this block."""
    return bool(stmts) and isinstance(
        stmts[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
    )


def _tests_uses_processes(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Call):
            chain = attr_chain(node.func)
            if chain.rpartition(".")[2] == "uses_processes":
                return True
    return False


def _worker_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _thread_only_receivers(func: ast.FunctionDef) -> Set[str]:
    """Local names bound to Exchange/WorkerPool built thread-or-serial.

    ``Exchange(workers)`` defaults to ``kind="thread"`` *unless* a
    ``pool=`` is borrowed (the pool's kind wins), so a bare construction
    without ``pool=`` is thread-only.
    """
    out: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        ctor = attr_chain(node.value.func).rpartition(".")[2]
        if ctor not in ("Exchange", "WorkerPool"):
            continue
        kinds = [
            kw.value.value
            for kw in node.value.keywords
            if kw.arg == "kind" and isinstance(kw.value, ast.Constant)
        ]
        borrows_pool = any(kw.arg == "pool" for kw in node.value.keywords)
        thread_only = (
            kinds[0] in ("thread", "serial")
            if kinds
            else not borrows_pool
        )
        if thread_only:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out.add(target.id)
    return out
