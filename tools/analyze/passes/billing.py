"""Pass 2 — counter-billing parity (REPRO201-202).

``ExecutionStats`` is the paper-reproduction's measurement instrument:
every mode, join strategy, and vectorization setting must bill the same
work to the same counters, or the benchmark gates compare apples to
oranges.  Two structural properties are checkable without running:

* REPRO201 — an operator body (``_rows``/``_candidate_pairs``/
  ``iterate``) that calls index/probe APIs but never touches
  ``self.stats`` cannot be billing the work it does;
* REPRO202 — a vectorized/scalar branch pair in which one side bills a
  counter the other side does not (``vectorized_batches``/
  ``vectorized_candidates`` are exempt: they exist to *count* the
  vectorized path).
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..core import (
    Finding,
    Module,
    Rule,
    SymbolTable,
    attr_chain,
    iter_class_methods,
)

RULES = {
    "REPRO201": Rule(
        id="REPRO201",
        name="unbilled-index-work",
        summary="operator iterates index entries without billing "
        "ExecutionStats counters",
        fix="bill the probe via self.stats (probes/node_reads/"
        "pair_tests/...) next to the index call",
    ),
    "REPRO202": Rule(
        id="REPRO202",
        name="scalar-vectorized-counter-asymmetry",
        summary="vectorized branch bills a counter its scalar twin "
        "does not (or vice versa)",
        fix="bill the same logical counters in both branches; only "
        "vectorized_batches/vectorized_candidates may differ",
    ),
}

#: Table/index APIs whose calls represent billable index work.
PROBE_APIS = {
    "probe",
    "match_positions",
    "matches",
    "range_query",
    "knn",
    "knn_browse",
    "candidates",
    "insert_batch",
    "query",
    "search",
    "scan",
}

#: Counters that legitimately differ between scalar and vectorized twins.
SYMMETRY_EXEMPT = {"vectorized_batches", "vectorized_candidates"}

_OPERATOR_METHODS = ("_rows", "_candidate_pairs", "iterate")


class BillingPass:
    name = "billing"
    rules = RULES

    def run(self, module: Module, symtab: SymbolTable) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not symtab.is_subclass_of(node.name, "PhysicalOperator"):
                continue
            if node.name == "PhysicalOperator":
                continue
            for method in iter_class_methods(node):
                if method.name not in _OPERATOR_METHODS:
                    continue
                symbol = f"{node.name}.{method.name}"
                self._check_unbilled(module, method, symbol, findings)
                self._check_asymmetry(module, method, symbol, findings)
        return findings

    def _check_unbilled(
        self,
        module: Module,
        method: ast.FunctionDef,
        symbol: str,
        findings: List[Finding],
    ) -> None:
        probe_call = None
        bills_stats = False
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                chain = attr_chain(node.func)
                attr = chain.rpartition(".")[2]
                if attr in PROBE_APIS and "." in chain:
                    probe_call = probe_call or node
            if (
                isinstance(node, ast.Attribute)
                and attr_chain(node).startswith("self.stats")
            ):
                bills_stats = True
        if probe_call is not None and not bills_stats:
            findings.append(
                Finding(
                    rule="REPRO201",
                    severity=RULES["REPRO201"].severity,
                    path=module.relpath,
                    line=probe_call.lineno,
                    column=probe_call.col_offset,
                    symbol=symbol,
                    message=(
                        f"{symbol} calls "
                        f"{attr_chain(probe_call.func)}() but never "
                        "bills self.stats"
                    ),
                    fix_hint=RULES["REPRO201"].fix,
                )
            )

    def _check_asymmetry(
        self,
        module: Module,
        method: ast.FunctionDef,
        symbol: str,
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(method):
            if not isinstance(node, ast.If) or not node.orelse:
                continue
            test_src = ast.unparse(node.test)
            if "vectorize" not in test_src and "store is not None" not in (
                test_src
            ):
                continue
            body_counters = _billed_counters(node.body) - SYMMETRY_EXEMPT
            else_counters = _billed_counters(node.orelse) - SYMMETRY_EXEMPT
            diff = body_counters.symmetric_difference(else_counters)
            if diff:
                findings.append(
                    Finding(
                        rule="REPRO202",
                        severity=RULES["REPRO202"].severity,
                        path=module.relpath,
                        line=node.lineno,
                        column=node.col_offset,
                        symbol=symbol,
                        message=(
                            f"{symbol} bills "
                            f"{sorted(diff)} in only one branch of the "
                            f"vectorized/scalar split ({test_src})"
                        ),
                        fix_hint=RULES["REPRO202"].fix,
                    )
                )


def _billed_counters(stmts: List[ast.stmt]) -> Set[str]:
    """Counter names aug-assigned through ``self.stats.X`` in ``stmts``."""
    out: Set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign):
                chain = attr_chain(node.target)
                if chain.startswith("self.stats."):
                    out.add(chain.split(".", 2)[2])
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    chain = attr_chain(target)
                    if chain.startswith("self.stats."):
                        out.add(chain.split(".", 2)[2])
    return out
