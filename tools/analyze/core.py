"""repro-lint core: module loading, symbol table, findings, baseline.

The framework is deliberately stdlib-only (``ast`` + ``re`` + ``json``)
so the checkers run in milliseconds on every commit with zero install
footprint.  Each pass is a plain object with

* ``name``   — short pass name (shown in ``--list-rules``),
* ``rules``  — mapping rule id -> :class:`Rule`,
* ``run(module, symtab) -> list[Finding]``.

Suppression syntax (mirrors the familiar linter convention):

* ``expr()  # repro-lint: disable=REPRO101`` — suppress on this line;
* a standalone ``# repro-lint: disable=REPRO101`` comment suppresses
  the next non-comment line;
* ``# repro-lint: disable-file=REPRO101`` anywhere in the first 20
  lines suppresses the rule for the whole file.

Baselines are line-insensitive ``{rule, path, symbol}`` triples so a
justified finding survives unrelated edits to the file above it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Analyzer",
    "Baseline",
    "ClassInfo",
    "Finding",
    "Module",
    "Rule",
    "SymbolTable",
    "attr_chain",
    "iter_class_methods",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)"
)
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\- ]+)"
)


@dataclass(frozen=True)
class Rule:
    """One checkable rule: identity, severity, and the story behind it."""

    id: str
    name: str
    summary: str
    severity: str = "error"  # "error" | "warning"
    fix: str = ""  # generic fix hint (per-finding hints may refine it)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    ``symbol`` is the nearest enclosing class/function qualname — it is
    what the baseline keys on, so findings stay pinned to the code they
    describe rather than to a line number.
    """

    rule: str
    severity: str
    path: str
    line: int
    column: int
    symbol: str
    message: str
    fix_hint: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def render(self) -> str:
        sym = f" [{self.symbol}]" if self.symbol else ""
        hint = f"\n    fix: {self.fix_hint}" if self.fix_hint else ""
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule} {self.severity}: {self.message}{sym}{hint}"
        )


class Module:
    """A parsed project module plus its suppression map."""

    def __init__(self, relpath: str, source: str):
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self._line_suppressions: Dict[int, Set[str]] = {}
        self._file_suppressions: Set[str] = set()
        self._scan_suppressions()

    @classmethod
    def from_file(cls, path: Path, root: Path) -> "Module":
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        return cls(rel, path.read_text(encoding="utf-8"))

    def _scan_suppressions(self) -> None:
        for i, text in enumerate(self.lines, start=1):
            m = _SUPPRESS_FILE_RE.search(text)
            if m and i <= 20:
                self._file_suppressions.update(_split_rules(m.group(1)))
                continue
            m = _SUPPRESS_RE.search(text)
            if not m:
                continue
            rules = _split_rules(m.group(1))
            self._line_suppressions.setdefault(i, set()).update(rules)
            if text.lstrip().startswith("#"):
                # A standalone comment suppresses the next code line.
                nxt = self._next_code_line(i)
                if nxt is not None:
                    self._line_suppressions.setdefault(nxt, set()).update(
                        rules
                    )

    def _next_code_line(self, after: int) -> Optional[int]:
        for j in range(after + 1, len(self.lines) + 1):
            text = self.lines[j - 1].strip()
            if text and not text.startswith("#"):
                return j
        return None

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_suppressions:
            return True
        rules = self._line_suppressions.get(line)
        return bool(rules) and (rule in rules or "all" in rules)

    def line_comment(self, line: int) -> str:
        """The raw source text of ``line`` (1-based), '' out of range."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def _split_rules(raw: str) -> Set[str]:
    return {part.strip() for part in raw.split(",") if part.strip()}


@dataclass
class ClassInfo:
    """One project class: where it lives and what it derives from."""

    name: str
    relpath: str
    bases: Tuple[str, ...]
    node: ast.ClassDef
    module: "Module" = field(repr=False, default=None)  # type: ignore[assignment]


class SymbolTable:
    """All project classes, with a name-based inheritance closure.

    Name-based resolution (rather than full import resolution) is
    sufficient here: the operator/shared-state class names the passes
    care about are unique across the project.
    """

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}

    def add_module(self, module: Module) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    b for b in (_base_name(e) for e in node.bases) if b
                )
                self.classes[node.name] = ClassInfo(
                    name=node.name,
                    relpath=module.relpath,
                    bases=bases,
                    node=node,
                    module=module,
                )

    def ancestors(self, name: str) -> Set[str]:
        """Transitive base-class names of ``name`` (project classes)."""
        out: Set[str] = set()
        frontier = list(self.classes[name].bases) if name in self.classes else []
        while frontier:
            base = frontier.pop()
            if base in out:
                continue
            out.add(base)
            info = self.classes.get(base)
            if info is not None:
                frontier.extend(info.bases)
        return out

    def is_subclass_of(self, name: str, root: str) -> bool:
        return name == root or root in self.ancestors(name)

    def subclasses_of(self, root: str) -> List[ClassInfo]:
        """All project classes deriving (transitively) from ``root``."""
        return [
            info
            for name, info in sorted(self.classes.items())
            if name != root and self.is_subclass_of(name, root)
        ]

    def mro_chain(self, name: str) -> List[ClassInfo]:
        """``name`` then its project ancestors, nearest-first (by BFS)."""
        chain: List[ClassInfo] = []
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            chain.append(info)
            frontier.extend(info.bases)
        return chain


def _base_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] bases
        return _base_name(expr.value)
    return None


def attr_chain(expr: ast.expr) -> str:
    """Dotted-name text of an expression, '' when not a plain chain.

    ``self.stats.node_reads`` -> ``"self.stats.node_reads"``.
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def iter_class_methods(
    node: ast.ClassDef,
) -> Iterator[ast.FunctionDef]:
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item  # type: ignore[misc]


class Baseline:
    """Accepted findings, keyed line-insensitively on (rule, path, symbol)."""

    def __init__(self, entries: Optional[Iterable[Dict[str, str]]] = None):
        self.entries: List[Dict[str, str]] = list(entries or [])
        self._keys = {
            (e.get("rule", ""), e.get("path", ""), e.get("symbol", ""))
            for e in self.entries
        }

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(data.get("findings", []))

    def contains(self, finding: Finding) -> bool:
        return finding.key() in self._keys

    @staticmethod
    def write(path: Path, findings: Sequence[Finding]) -> None:
        entries = sorted(
            (
                {
                    "rule": f.rule,
                    "path": f.path,
                    "symbol": f.symbol,
                    "justification": "TODO: justify or fix",
                }
                for f in findings
            ),
            key=lambda e: (e["path"], e["rule"], e["symbol"]),
        )
        payload = {"version": 1, "findings": entries}
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )


class Analyzer:
    """Load modules, build the symbol table, run every pass."""

    def __init__(self, passes: Sequence[object]):
        self.passes = list(passes)
        self.suppressed_inline = 0
        self.baselined = 0

    @staticmethod
    def collect_files(paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for p in paths:
            if p.is_dir():
                files.extend(sorted(p.rglob("*.py")))
            elif p.suffix == ".py":
                files.append(p)
        return files

    def load(self, paths: Sequence[Path], root: Path) -> Tuple[List[Module], SymbolTable]:
        modules = [
            Module.from_file(f, root) for f in self.collect_files(paths)
        ]
        symtab = SymbolTable()
        for m in modules:
            symtab.add_module(m)
        return modules, symtab

    def run(
        self,
        modules: Sequence[Module],
        symtab: SymbolTable,
        baseline: Optional[Baseline] = None,
    ) -> List[Finding]:
        self.suppressed_inline = 0
        self.baselined = 0
        out: List[Finding] = []
        for module in modules:
            for pass_ in self.passes:
                for finding in pass_.run(module, symtab):  # type: ignore[attr-defined]
                    if module.is_suppressed(finding.rule, finding.line):
                        self.suppressed_inline += 1
                        continue
                    if baseline is not None and baseline.contains(finding):
                        self.baselined += 1
                        continue
                    out.append(finding)
        out.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return out

    def all_rules(self) -> List[Rule]:
        rules: List[Rule] = []
        for pass_ in self.passes:
            rules.extend(pass_.rules.values())  # type: ignore[attr-defined]
        return sorted(rules, key=lambda r: r.id)
