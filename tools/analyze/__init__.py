"""repro-lint: project-specific static analysis for the repro codebase.

Run as ``python -m tools.analyze [paths]``; see ``README.md`` in this
directory for the rule catalog.
"""

from .core import Analyzer, Baseline, Finding, Module, Rule, SymbolTable
from .passes import ALL_PASSES

__version__ = "1.0"

__all__ = [
    "ALL_PASSES",
    "Analyzer",
    "Baseline",
    "Finding",
    "Module",
    "Rule",
    "SymbolTable",
    "__version__",
]
