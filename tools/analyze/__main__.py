"""``python -m tools.analyze`` — the repro-lint CLI.

Exit status: 0 when no non-baselined findings remain, 1 otherwise,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import Analyzer, Baseline
from .passes import ALL_PASSES
from .reporters import render_json, render_text

DEFAULT_TARGET = "src/repro"
DEFAULT_BASELINE = Path("tools/analyze/baseline.json")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="repro-lint: project-specific static analysis "
        "(determinism, counter billing, lock discipline, "
        "pickle safety, operator contract).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[DEFAULT_TARGET],
        help=f"files/directories to analyze (default: {DEFAULT_TARGET})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file of accepted findings "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    analyzer = Analyzer([cls() for cls in ALL_PASSES])

    if args.list_rules:
        for rule in analyzer.all_rules():
            print(f"{rule.id}  {rule.name:35s} [{rule.severity}]")
            print(f"    {rule.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"error: no such path(s): {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    modules, symtab = analyzer.load(paths, Path.cwd())
    baseline = (
        None if args.no_baseline else Baseline.load(args.baseline)
    )
    findings = analyzer.run(modules, symtab, baseline=baseline)

    if args.write_baseline:
        Baseline.write(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        print(
            render_json(
                findings, analyzer.suppressed_inline, analyzer.baselined
            )
        )
    else:
        print(
            render_text(
                findings, analyzer.suppressed_inline, analyzer.baselined
            )
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
