"""Finding reporters: human text and a stable JSON schema.

The JSON schema is part of the tool's contract (CI parses it and the
tests pin it):

.. code-block:: json

    {
      "tool": "repro-lint",
      "schema_version": 1,
      "findings": [
        {"rule": "...", "severity": "...", "path": "...", "line": 1,
         "column": 0, "symbol": "...", "message": "...",
         "fix_hint": "..."}
      ],
      "summary": {"total": 0, "by_rule": {}, "suppressed_inline": 0,
                  "baselined": 0}
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .core import Finding

SCHEMA_VERSION = 1


def render_text(
    findings: Sequence[Finding],
    suppressed_inline: int = 0,
    baselined: int = 0,
) -> str:
    lines: List[str] = [f.render() for f in findings]
    counts = Counter(f.rule for f in findings)
    summary = ", ".join(
        f"{rule}: {n}" for rule, n in sorted(counts.items())
    )
    lines.append(
        f"repro-lint: {len(findings)} finding(s)"
        + (f" ({summary})" if summary else "")
        + f"; {suppressed_inline} suppressed inline, "
        f"{baselined} baselined"
    )
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    suppressed_inline: int = 0,
    baselined: int = 0,
) -> str:
    payload = {
        "tool": "repro-lint",
        "schema_version": SCHEMA_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "column": f.column,
                "symbol": f.symbol,
                "message": f.message,
                "fix_hint": f.fix_hint,
            }
            for f in findings
        ],
        "summary": {
            "total": len(findings),
            "by_rule": dict(
                sorted(Counter(f.rule for f in findings).items())
            ),
            "suppressed_inline": suppressed_inline,
            "baselined": baselined,
        },
    }
    return json.dumps(payload, indent=2)
